package core

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"gretel/internal/trace"
	"gretel/internal/tracestore"
)

// faultyEvents records the shared multi-fault script as a plain event
// slice, so the same stream can be replayed through Ingest and
// IngestBatch at any shard count.
func faultyEvents() []trace.Event {
	var evs []trace.Event
	faultyScript(&stream{emit: func(ev trace.Event) { evs = append(evs, ev) }})
	return evs
}

// driveBatched replays events through IngestBatch in cfg.IngestBatch
// chunks (an odd fallback size when unset, so batch boundaries land
// mid-exchange) and closes the analyzer.
func driveBatched(evs []trace.Event, cfg Config, store *tracestore.Store) *Analyzer {
	a := newAnalyzer(cfg)
	a.SetExplain(store)
	chunk := cfg.IngestBatch
	if chunk <= 0 {
		chunk = 7
	}
	for lo := 0; lo < len(evs); lo += chunk {
		hi := lo + chunk
		if hi > len(evs) {
			hi = len(evs)
		}
		a.IngestBatch(evs[lo:hi])
	}
	a.Close()
	return a
}

// serializeReports renders reports to JSON — the byte-identical
// contract covers the serialized form, not just DeepEqual.
func serializeReports(t *testing.T, reps []*Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, r := range reps {
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestShardedMatchesInlineReports is the determinism contract of the
// sharded ingest front-end: the same faulty stream through the classic
// inline path (IngestShards: 0) and through batched sharded ingest at
// 1 and 4 shards — with and without the detect worker pool — must
// produce byte-identical serialized reports, byte-identical explain
// traces, and identical Stats. Run under -race this also exercises the
// spine/shard-worker sharing.
func TestShardedMatchesInlineReports(t *testing.T) {
	evs := faultyEvents()
	baseStore := tracestore.New(0)
	base := driveBatched(evs, Config{Alpha: 32}, baseStore)
	if len(base.Reports()) == 0 {
		t.Fatal("no reports produced")
	}
	baseReps := serializeReports(t, base.Reports())
	var baseTraces bytes.Buffer
	if err := tracestore.WriteNDJSON(&baseTraces, baseStore.All()); err != nil {
		t.Fatal(err)
	}
	if baseTraces.Len() == 0 {
		t.Fatal("no traces serialized")
	}

	cases := []struct {
		name string
		cfg  Config
	}{
		{"1shard", Config{Alpha: 32, IngestShards: 1}},
		{"4shards", Config{Alpha: 32, IngestShards: 4}},
		{"4shards-big-batch", Config{Alpha: 32, IngestShards: 4, IngestBatch: 256}},
		{"4shards-4workers", Config{Alpha: 32, IngestShards: 4, DetectWorkers: 4, DetectBacklog: 2}},
	}
	for _, c := range cases {
		store := tracestore.New(0)
		a := driveBatched(evs, c.cfg, store)
		if got := serializeReports(t, a.Reports()); !bytes.Equal(got, baseReps) {
			t.Fatalf("%s: serialized reports differ from inline", c.name)
		}
		for i, r := range a.Reports() {
			if !reflect.DeepEqual(*r, *base.Reports()[i]) {
				t.Fatalf("%s: report %d differs:\ninline:  %+v\nsharded: %+v", c.name, i, *base.Reports()[i], *r)
			}
		}
		var traces bytes.Buffer
		if err := tracestore.WriteNDJSON(&traces, store.All()); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(traces.Bytes(), baseTraces.Bytes()) {
			t.Fatalf("%s: explain traces differ from inline", c.name)
		}
		if a.Stats != base.Stats {
			t.Fatalf("%s: stats differ:\ninline:  %+v\nsharded: %+v", c.name, base.Stats, a.Stats)
		}
	}
}

// TestShardedSingleEventIngest pins the Ingest fallback: with shards
// running, per-event Ingest routes through one-event batches and must
// still match the inline path exactly.
func TestShardedSingleEventIngest(t *testing.T) {
	inline := driveFaulty(Config{Alpha: 32})
	sharded := driveFaulty(Config{Alpha: 32, IngestShards: 4})
	if !bytes.Equal(serializeReports(t, inline.Reports()), serializeReports(t, sharded.Reports())) {
		t.Fatal("per-event sharded ingest diverges from inline")
	}
	if inline.Stats != sharded.Stats {
		t.Fatalf("stats differ:\ninline:  %+v\nsharded: %+v", inline.Stats, sharded.Stats)
	}
}

// TestShardedLatencySummariesMatchInline checks phase-B routing keeps
// each API's summary whole: the merged sharded summaries must render
// identically to the inline ones (same APIs, same order, same digests).
func TestShardedLatencySummariesMatchInline(t *testing.T) {
	evs := faultyEvents()
	inline := driveBatched(evs, Config{Alpha: 32}, nil)
	sharded := driveBatched(evs, Config{Alpha: 32, IngestShards: 4}, nil)
	li, ls := inline.LatencySummaries(), sharded.LatencySummaries()
	if len(li) == 0 || len(li) != len(ls) {
		t.Fatalf("summary counts: inline=%d sharded=%d", len(li), len(ls))
	}
	for i := range li {
		if li[i].API != ls[i].API || li[i].Summary.String() != ls[i].Summary.String() {
			t.Fatalf("summary %d differs: inline %v %s, sharded %v %s",
				i, li[i].API, li[i].Summary, ls[i].API, ls[i].Summary)
		}
	}
}

// shardPairCount sums pairing-map fill across shards.
func shardPairCount(a *Analyzer) int {
	n := len(a.pending) + len(a.calls)
	for _, s := range a.shards {
		n += len(s.pending) + len(s.calls)
	}
	return n
}

// TestShardEvictionTTLAndCap drives request floods (responses never
// arrive) through sharded ingest under combined TTL + cap pressure and
// checks exact eviction accounting: every inserted entry is either
// still pending, paired, or counted in Stats.PairsEvicted — and a
// response for an evicted request must not produce a phantom pair.
func TestShardEvictionTTLAndCap(t *testing.T) {
	cfg := Config{Alpha: 16, MaxPairs: 64, PairTTL: time.Second, IngestShards: 4, IngestBatch: 32}
	a := newAnalyzer(cfg)
	const n = 5000 // > pairSweepEvery so the amortized TTL sweep fires
	evs := make([]trace.Event, 0, 2*n)
	for i := 1; i <= n; i++ {
		evs = append(evs, trace.Event{Time: at(i * 10), Type: trace.RESTRequest, API: get("/x"), ConnID: uint64(i)})
		evs = append(evs, trace.Event{Time: at(i * 10), Type: trace.RPCCall, API: rpc("build"), MsgID: "m" + itoa(i)})
	}
	for lo := 0; lo < len(evs); lo += cfg.IngestBatch {
		hi := lo + cfg.IngestBatch
		if hi > len(evs) {
			hi = len(evs)
		}
		a.IngestBatch(evs[lo:hi])
	}

	if a.Stats.PairsEvicted == 0 {
		t.Fatal("no evictions under combined TTL+cap pressure")
	}
	// Per-shard caps: ceil(64/4) = 16 per map per shard.
	for i, s := range a.shards {
		if len(s.pending) > 16 || len(s.calls) > 16 {
			t.Fatalf("shard %d over cap: pending=%d calls=%d", i, len(s.pending), len(s.calls))
		}
	}
	// Exact accounting: inserted = still pending + paired + evicted.
	inserted := uint64(2 * n)
	pending := uint64(shardPairCount(a))
	paired := a.Stats.RESTPairs + a.Stats.RPCPairs
	if got := pending + paired + a.Stats.PairsEvicted; got != inserted {
		t.Fatalf("eviction accounting: pending(%d) + paired(%d) + evicted(%d) = %d, want %d",
			pending, paired, a.Stats.PairsEvicted, got, inserted)
	}

	// No phantom pair: ConnID 1 was evicted long ago; its late response
	// must not pair. A response for a surviving request still must.
	a.IngestBatch([]trace.Event{{Time: at(n*10 + 5), Type: trace.RESTResponse, API: get("/x"), Status: 200, ConnID: 1}})
	if a.Stats.RESTPairs != 0 {
		t.Fatalf("phantom pair for evicted request: RESTPairs=%d", a.Stats.RESTPairs)
	}
	var survivor uint64
	for _, s := range a.shards {
		for k := range s.pending {
			if k > survivor {
				survivor = k
			}
		}
	}
	if survivor == 0 {
		t.Fatal("no surviving pending request to pair")
	}
	a.IngestBatch([]trace.Event{{Time: at(n*10 + 6), Type: trace.RESTResponse, API: get("/x"), Status: 200, ConnID: survivor}})
	if a.Stats.RESTPairs != 1 {
		t.Fatalf("surviving request did not pair: RESTPairs=%d", a.Stats.RESTPairs)
	}
	a.Close()
}

// TestShardEvictionDeterministicAcrossShardCounts pins TTL eviction
// determinism: dead entries (responses never arrive) age out
// identically whatever the shard count, so the eviction total and the
// surviving set match between 1 and 4 shards — and between repeated
// runs at the same count.
func TestShardEvictionDeterministicAcrossShardCounts(t *testing.T) {
	run := func(shards int) *Analyzer {
		cfg := Config{Alpha: 16, MaxPairs: -1, PairTTL: time.Second, IngestShards: shards, IngestBatch: 64}
		a := newAnalyzer(cfg)
		const n = 5000
		evs := make([]trace.Event, 0, n)
		for i := 1; i <= n; i++ {
			evs = append(evs, trace.Event{Time: at(i * 10), Type: trace.RESTRequest, API: get("/x"), ConnID: uint64(i)})
		}
		for lo := 0; lo < len(evs); lo += cfg.IngestBatch {
			hi := lo + cfg.IngestBatch
			if hi > len(evs) {
				hi = len(evs)
			}
			a.IngestBatch(evs[lo:hi])
		}
		a.Close()
		return a
	}
	a1, a4, a4b := run(1), run(4), run(4)
	if a1.Stats.PairsEvicted == 0 {
		t.Fatal("TTL sweep never evicted")
	}
	if a1.Stats != a4.Stats || a4.Stats != a4b.Stats {
		t.Fatalf("stats differ across shard counts/runs:\n1:  %+v\n4:  %+v\n4b: %+v", a1.Stats, a4.Stats, a4b.Stats)
	}
	surviving := func(a *Analyzer) map[uint64]bool {
		out := map[uint64]bool{}
		for k := range a.pending {
			out[k] = true
		}
		for _, s := range a.shards {
			for k := range s.pending {
				out[k] = true
			}
		}
		return out
	}
	if s1, s4 := surviving(a1), surviving(a4); !reflect.DeepEqual(s1, s4) {
		t.Fatalf("surviving pending sets differ: 1 shard holds %d, 4 shards hold %d", len(s1), len(s4))
	}
}

// TestShardedNodeGapFlush checks NodeGap reaches the shard pairing
// maps: pending pairs waiting on the gapped node are flushed from every
// shard and cannot pair afterwards.
func TestShardedNodeGapFlush(t *testing.T) {
	a := newAnalyzer(Config{Alpha: 16, IngestShards: 4, IngestBatch: 8})
	evs := make([]trace.Event, 0, 40)
	for i := 1; i <= 40; i++ {
		node := "n1"
		if i%2 == 0 {
			node = "n2"
		}
		evs = append(evs, trace.Event{Time: at(i * 10), Type: trace.RESTRequest, API: get("/x"), ConnID: uint64(i), DstNode: node})
	}
	a.IngestBatch(evs)
	a.NodeGap("n1", 3, at(500))
	if a.Stats.PairsFlushed != 20 {
		t.Fatalf("flushed %d pairs, want 20", a.Stats.PairsFlushed)
	}
	// A flushed request must not pair; an n2 request still does.
	a.IngestBatch([]trace.Event{{Time: at(510), Type: trace.RESTResponse, API: get("/x"), Status: 200, ConnID: 1}})
	if a.Stats.RESTPairs != 0 {
		t.Fatalf("flushed request paired anyway: RESTPairs=%d", a.Stats.RESTPairs)
	}
	a.IngestBatch([]trace.Event{{Time: at(520), Type: trace.RESTResponse, API: get("/x"), Status: 200, ConnID: 2}})
	if a.Stats.RESTPairs != 1 {
		t.Fatalf("healthy-node request did not pair: RESTPairs=%d", a.Stats.RESTPairs)
	}
	a.Close()
}

// TestShardedUsableAfterClose: Close stops the shard workers but the
// analyzer keeps working on the inline path, and LatencySummaries
// still merges what the shards accumulated.
func TestShardedUsableAfterClose(t *testing.T) {
	a := newAnalyzer(Config{Alpha: 16, IngestShards: 2})
	s := &stream{a: a}
	s.rest(get("/x"), 200, 1, "op")
	a.Close()
	if len(a.LatencySummaries()) != 1 {
		t.Fatal("shard summaries lost after Close")
	}
	// Post-Close ingest falls back to the inline maps.
	s.rest(get("/y"), 200, 2, "op")
	a.Flush()
	if a.Stats.RESTPairs != 2 {
		t.Fatalf("post-Close ingest broken: RESTPairs=%d", a.Stats.RESTPairs)
	}
	// LatencySummaries merges the shard-held /x with the inline /y.
	if sums := a.LatencySummaries(); len(sums) != 2 {
		t.Fatalf("merged summaries wrong: %+v", sums)
	}
}
