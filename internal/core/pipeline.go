// Concurrent detection pipeline: the event receiver (Ingest) freezes
// fault-centered snapshots and hands them to a bounded worker pool that
// runs Algorithm 2 off the hot path, so a fault burst never stalls event
// intake (§7.4's throughput claim under load). A sequenced collector
// applies finished reports in fault-arrival order, making parallel
// detection's output byte-identical to the classic inline path
// (Config.DetectWorkers = 0), which remains available for ablation.
package core

import (
	"fmt"
	"sort"
	"time"

	"gretel/internal/telemetry"
	"gretel/internal/trace"
	"gretel/internal/window"
)

var (
	mSnapshotsShed = telemetry.GetCounter("core.snapshots_shed")
	mPairsEvicted  = telemetry.GetCounter("core.pairs_evicted")
	mNodeGaps      = telemetry.GetCounter("core.node_gaps")
	mPairsFlushed  = telemetry.GetCounter("core.pairs_flushed")
	gDetectQueue   = telemetry.GetGauge("core.detect_queue_depth")
)

// detectJob carries one armed snapshot from the receiver to the pool.
// seq is the fault-arrival sequence the collector reorders by.
type detectJob struct {
	seq     uint64
	fault   trace.Event
	kind    FaultKind
	latency time.Duration
	snap    *window.Snapshot
	// degraded is the degraded-node set captured at dispatch time on the
	// receiver goroutine — workers must not read a.degraded themselves.
	degraded []string
	// traceID is the evidence-trace ID assigned at dispatch time on the
	// receiver goroutine (zero outside explain mode), so IDs follow
	// fault-arrival order regardless of worker count.
	traceID uint64
}

// detectResult pairs a finished report with its arrival sequence.
type detectResult struct {
	seq uint64
	rep *Report
}

// startPipeline launches the detect workers and the sequenced collector.
func (a *Analyzer) startPipeline(workers int) {
	a.jobs = make(chan detectJob, a.cfg.DetectBacklog)
	// Workers park finished results here; sized so a worker never blocks
	// behind the collector for longer than one reordering round.
	a.results = make(chan detectResult, a.cfg.DetectBacklog+workers)
	a.collectorDone = make(chan struct{})
	for i := 0; i < workers; i++ {
		a.workersWG.Add(1)
		go a.detectWorker(i)
	}
	go a.collect()
}

// dispatch hands a filled snapshot to the detection stage: inline when
// no worker pool is configured (bit-for-bit the classic single-goroutine
// path), otherwise enqueued to the pool. A full queue blocks the
// receiver (backpressure) unless DetectShed is set, in which case the
// snapshot is dropped and counted.
func (a *Analyzer) dispatch(fault trace.Event, kind FaultKind, latency time.Duration, snap *window.Snapshot) {
	deg := a.degradedList()
	var traceID uint64
	if a.explain != nil {
		a.traceSeq++
		traceID = a.traceSeq
	}
	if a.jobs == nil {
		rep := a.detect(fault, kind, latency, snap, traceID)
		snap.Release()
		rep.DegradedNodes = deg
		a.finish(rep)
		return
	}
	job := detectJob{seq: a.nextSeq, fault: fault, kind: kind, latency: latency, snap: snap, degraded: deg, traceID: traceID}
	a.inFlight.Add(1)
	if a.cfg.DetectShed {
		select {
		case a.jobs <- job:
		default:
			a.inFlight.Done()
			a.Stats.SnapshotsShed++
			mSnapshotsShed.Inc()
			snap.Release()
			return
		}
	} else {
		a.jobs <- job
	}
	a.nextSeq++
	gDetectQueue.Add(1)
}

// detectWorker drains the job queue, running Algorithm 2 per snapshot.
// Each worker times its jobs into its own span histogram
// (core.detect.worker<N>).
func (a *Analyzer) detectWorker(id int) {
	defer a.workersWG.Done()
	spans := telemetry.GetHistogram(fmt.Sprintf("core.detect.worker%d", id))
	for job := range a.jobs {
		gDetectQueue.Add(-1)
		sp := spans.Start()
		rep := a.detect(job.fault, job.kind, job.latency, job.snap, job.traceID)
		job.snap.Release()
		rep.DegradedNodes = job.degraded
		sp.End()
		a.results <- detectResult{seq: job.seq, rep: rep}
	}
}

// collect applies finished reports in fault-arrival order: results that
// overtook an earlier in-flight detection are held until their turn.
func (a *Analyzer) collect() {
	defer close(a.collectorDone)
	held := make(map[uint64]*Report)
	var next uint64
	for r := range a.results {
		held[r.seq] = r.rep
		for {
			rep, ok := held[next]
			if !ok {
				break
			}
			delete(held, next)
			next++
			a.finish(rep)
			a.inFlight.Done()
		}
	}
}

// Close drains the detection pipeline, stops its goroutines, and stops
// the ingest shard workers (a no-op beyond Flush in inline mode). The
// analyzer stays usable afterwards — later events pair on the inline
// maps and faults are detected inline — and Reports/Stats are safe to
// read once Close returns.
func (a *Analyzer) Close() {
	a.Flush()
	a.stopShards()
	if a.jobs == nil {
		return
	}
	close(a.jobs)
	a.workersWG.Wait()
	close(a.results)
	<-a.collectorDone
	a.jobs = nil
}

// pairSweepEvery amortizes the pairing-state age sweep: one map walk per
// this many events. Must be a power of two.
const pairSweepEvery = 1 << 12

// evictAgedPairs drops request-side pairing state older than PairTTL in
// event time — requests whose responses were lost would otherwise pin
// map entries forever.
func (a *Analyzer) evictAgedPairs(now time.Time) {
	if a.cfg.PairTTL <= 0 {
		return
	}
	cutoff := now.Add(-a.cfg.PairTTL)
	a.Stats.PairsEvicted += agePairs(a.pending, cutoff) + agePairs(a.calls, cutoff)
}

// agePairs drops entries older than the cutoff from one pairing map —
// the TTL sweep primitive shared by the inline path and the ingest
// shards. Returns the number evicted (also added to the telemetry
// counter, but not to Stats: callers own their Stats accounting).
func agePairs[K comparable](m map[K]pendingReq, cutoff time.Time) uint64 {
	var n uint64
	for k, p := range m {
		if p.at.Before(cutoff) {
			delete(m, k)
			n++
		}
	}
	if n > 0 {
		mPairsEvicted.Add(n)
	}
	return n
}

// capPairs enforces the MaxPairs size cap on one pairing map by evicting
// the oldest quarter when full — O(n log n) on the rare trip, amortized
// constant per insert. Ties on timestamp break by event sequence so
// eviction is deterministic. Returns the number evicted.
func capPairs[K comparable](m map[K]pendingReq, max int) uint64 {
	if max <= 0 || len(m) < max {
		return 0
	}
	type entry struct {
		k   K
		at  time.Time
		seq uint64
	}
	all := make([]entry, 0, len(m))
	for k, p := range m {
		all = append(all, entry{k, p.at, p.seq})
	}
	sort.Slice(all, func(i, j int) bool {
		if !all[i].at.Equal(all[j].at) {
			return all[i].at.Before(all[j].at)
		}
		return all[i].seq < all[j].seq
	})
	drop := len(all)/4 + 1
	for _, e := range all[:drop] {
		delete(m, e.k)
	}
	mPairsEvicted.Add(uint64(drop))
	return uint64(drop)
}
