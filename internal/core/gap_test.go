package core

import (
	"reflect"
	"testing"

	"gretel/internal/trace"
)

// TestNodeGapFlushesPendingPairs: a monitoring gap on a node must flush
// pairing state waiting on that node's responses — a latency computed
// across lost frames would be fiction — while pairs waiting on healthy
// nodes survive.
func TestNodeGapFlushesPendingPairs(t *testing.T) {
	a := newAnalyzer(Config{Alpha: 32})
	a.Ingest(trace.Event{Time: at(10), Type: trace.RESTRequest, API: get("/list"),
		ConnID: 1, DstNode: "nova-node", WireBytes: 150})
	a.Ingest(trace.Event{Time: at(20), Type: trace.RPCCall, API: rpc("build"),
		MsgID: "m1", DstNode: "nova-node", WireBytes: 200})
	a.Ingest(trace.Event{Time: at(30), Type: trace.RESTRequest, API: get("/c2"),
		ConnID: 2, DstNode: "cinder-node", WireBytes: 150})

	a.NodeGap("nova-node", 7, at(40))

	if a.Stats.NodeGaps != 1 || a.Stats.FramesMissed != 7 {
		t.Fatalf("gaps=%d missed=%d, want 1/7", a.Stats.NodeGaps, a.Stats.FramesMissed)
	}
	if a.Stats.PairsFlushed != 2 {
		t.Fatalf("flushed %d pairs, want 2 (REST + RPC on nova-node)", a.Stats.PairsFlushed)
	}
	if len(a.pending) != 1 || len(a.calls) != 0 {
		t.Fatalf("pending=%d calls=%d after flush, want 1/0", len(a.pending), len(a.calls))
	}

	// A response straggling in after the flush must not pair: its request
	// state is gone, so no latency sample is fabricated.
	a.Ingest(trace.Event{Time: at(50), Type: trace.RESTResponse, API: get("/list"),
		ConnID: 1, Status: 200, DstNode: "api-node", WireBytes: 180})
	if a.Stats.RESTPairs != 0 {
		t.Fatalf("flushed pair still matched: %d REST pairs", a.Stats.RESTPairs)
	}
	// The healthy node's pair still completes.
	a.Ingest(trace.Event{Time: at(60), Type: trace.RESTResponse, API: get("/c2"),
		ConnID: 2, Status: 200, DstNode: "api-node", WireBytes: 180})
	if a.Stats.RESTPairs != 1 {
		t.Fatalf("healthy pair lost: %d REST pairs", a.Stats.RESTPairs)
	}
}

// TestDegradedNodesAnnotateReports: reports produced while a node's
// feed has unhealed loss carry the node in DegradedNodes; after
// NodeRecovered the annotation clears — and on a healthy plane the
// field is nil, keeping reports byte-identical to pre-degradation runs.
func TestDegradedNodesAnnotateReports(t *testing.T) {
	a := newAnalyzer(Config{Alpha: 32})
	s := &stream{a: a}

	s.rest(post("/a1"), 200, 1, "op-a")
	s.rest(post("/a2"), 500, 1, "op-a") // fault on a healthy plane
	s.filler(20)

	a.NodeGap("nova-node", 3, at(s.ms))
	a.NodeGap("glance-node", 0, at(s.ms)) // agent went dark
	s.rest(post("/a2"), 500, 2, "op-a")   // fault during the gap
	s.filler(20)

	a.NodeRecovered("nova-node")
	a.NodeRecovered("glance-node")
	s.rest(post("/a2"), 500, 3, "op-a") // fault after recovery
	s.filler(20)
	a.Flush()

	reps := a.Reports()
	if len(reps) != 3 {
		t.Fatalf("reports = %d, want 3", len(reps))
	}
	if reps[0].DegradedNodes != nil {
		t.Fatalf("healthy-plane report annotated: %v", reps[0].DegradedNodes)
	}
	want := []string{"glance-node", "nova-node"} // sorted for determinism
	if !reflect.DeepEqual(reps[1].DegradedNodes, want) {
		t.Fatalf("degraded = %v, want %v", reps[1].DegradedNodes, want)
	}
	if reps[2].DegradedNodes != nil {
		t.Fatalf("post-recovery report still annotated: %v", reps[2].DegradedNodes)
	}
}

// TestDegradedNodesWithWorkerPool: the degraded set is captured at
// dispatch time on the receiver goroutine, so the worker-pool path
// annotates identically to the inline path.
func TestDegradedNodesWithWorkerPool(t *testing.T) {
	a := newAnalyzer(Config{Alpha: 32, DetectWorkers: 2})
	defer a.Close()
	s := &stream{a: a}

	a.NodeGap("nova-node", 1, at(0))
	s.rest(post("/a2"), 500, 1, "op-a")
	s.filler(20)
	a.NodeRecovered("nova-node")
	s.rest(post("/a2"), 500, 2, "op-a")
	s.filler(20)
	a.Flush()

	reps := a.Reports()
	if len(reps) != 2 {
		t.Fatalf("reports = %d, want 2", len(reps))
	}
	if !reflect.DeepEqual(reps[0].DegradedNodes, []string{"nova-node"}) {
		t.Fatalf("degraded = %v, want [nova-node]", reps[0].DegradedNodes)
	}
	if reps[1].DegradedNodes != nil {
		t.Fatalf("post-recovery report annotated: %v", reps[1].DegradedNodes)
	}
}
