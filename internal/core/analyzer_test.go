package core

import (
	"testing"
	"time"

	"gretel/internal/fingerprint"
	"gretel/internal/trace"
	"gretel/internal/tsoutliers"
)

var epoch = time.Date(2016, 12, 12, 0, 0, 0, 0, time.UTC)

func at(ms int) time.Time { return epoch.Add(time.Duration(ms) * time.Millisecond) }

func get(p string) trace.API  { return trace.RESTAPI(trace.SvcNova, "GET", p) }
func post(p string) trace.API { return trace.RESTAPI(trace.SvcNova, "POST", p) }
func rpc(m string) trace.API  { return trace.RPCAPI(trace.SvcNovaCompute, m) }

// testLib builds a small library of three operations.
func testLib() *fingerprint.Library {
	lib := fingerprint.NewLibrary()
	lib.AddAPIs("op-a", "Compute", []trace.API{get("/list"), post("/a1"), rpc("build"), post("/a2"), get("/status")})
	lib.AddAPIs("op-b", "Compute", []trace.API{get("/list"), post("/b1"), post("/a2"), get("/status")})
	lib.AddAPIs("op-c", "Storage", []trace.API{post("/c1"), get("/c2")})
	return lib
}

// stream is a helper that emits a REST exchange for an API. Events go
// to the analyzer, or to emit when set (shard tests record the stream
// once and replay it through IngestBatch).
type stream struct {
	a    *Analyzer
	emit func(trace.Event)
	conn uint64
	msg  int
	ms   int
}

func (s *stream) push(ev trace.Event) {
	if s.emit != nil {
		s.emit(ev)
		return
	}
	s.a.Ingest(ev)
}

func (s *stream) rest(api trace.API, status int, opID uint64, opName string) {
	s.conn++
	s.ms += 10
	s.push(trace.Event{
		Time: at(s.ms), Type: trace.RESTRequest, API: api,
		ConnID: s.conn, OpID: opID, OpName: opName, WireBytes: 150,
	})
	s.ms += 10
	s.push(trace.Event{
		Time: at(s.ms), Type: trace.RESTResponse, API: api, Status: status,
		ConnID: s.conn, OpID: opID, OpName: opName, WireBytes: 180,
	})
}

func (s *stream) rpcCall(api trace.API, fail bool, opID uint64, opName string) {
	s.msg++
	id := "m" + itoa(s.msg)
	s.ms += 10
	s.push(trace.Event{
		Time: at(s.ms), Type: trace.RPCCall, API: api,
		MsgID: id, OpID: opID, OpName: opName, WireBytes: 200,
	})
	s.ms += 10
	status := 0
	if fail {
		status = 1
	}
	s.push(trace.Event{
		Time: at(s.ms), Type: trace.RPCReply, API: api, Status: status,
		MsgID: id, OpID: opID, OpName: opName, WireBytes: 120,
	})
}

func (s *stream) filler(n int) {
	for i := 0; i < n; i++ {
		s.rest(get("/filler"), 200, 999, "bg")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func newAnalyzer(cfg Config) *Analyzer {
	return New(testLib(), cfg)
}

func TestConfigDefaultsPaperValues(t *testing.T) {
	lib := fingerprint.NewLibrary()
	// Give the library an FPmax of 384 like the paper.
	apis := make([]trace.API, 384)
	for i := range apis {
		apis[i] = get("/x" + itoa(i))
	}
	lib.AddAPIs("giant", "Compute", apis)
	a := New(lib, Config{})
	cfg := a.Config()
	if cfg.Alpha != 768 {
		t.Fatalf("alpha = %d, want 768", cfg.Alpha)
	}
	if int(cfg.C1*float64(cfg.Alpha)) != 76 { // β₀ ≈ 80 in the paper (rounding)
		t.Logf("beta0 = %d", int(cfg.C1*float64(cfg.Alpha)))
	}
	if !cfg.PruneRPC {
		t.Fatal("PruneRPC should default on")
	}
}

func TestPairingAndStats(t *testing.T) {
	a := newAnalyzer(Config{Alpha: 32})
	s := &stream{a: a}
	s.rest(get("/list"), 200, 1, "op-a")
	s.rpcCall(rpc("build"), false, 1, "op-a")
	if a.Stats.RESTPairs != 1 || a.Stats.RPCPairs != 1 {
		t.Fatalf("pairs: %d REST %d RPC", a.Stats.RESTPairs, a.Stats.RPCPairs)
	}
	if a.Stats.Events != 4 || a.Stats.Bytes == 0 {
		t.Fatalf("events=%d bytes=%d", a.Stats.Events, a.Stats.Bytes)
	}
}

func TestOperationalFaultDetection(t *testing.T) {
	a := newAnalyzer(Config{Alpha: 32})
	s := &stream{a: a}
	// op-a runs and fails at POST /a2.
	s.rest(get("/list"), 200, 1, "op-a")
	s.rest(post("/a1"), 200, 1, "op-a")
	s.rpcCall(rpc("build"), false, 1, "op-a")
	s.rest(post("/a2"), 500, 1, "op-a") // fault
	// Future half of the window fills with background traffic.
	s.filler(20)
	a.Flush()

	reps := a.Reports()
	if len(reps) != 1 {
		t.Fatalf("reports = %d, want 1", len(reps))
	}
	rep := reps[0]
	if rep.Kind != Operational {
		t.Fatalf("kind = %v", rep.Kind)
	}
	if !rep.Hit() {
		t.Fatalf("truth %q not in candidates %v", rep.TruthOp, rep.Candidates)
	}
	// op-b also contains POST /a2; its other state-change symbol (POST
	// /b1) is absent from the window, so under the paper's
	// omission-tolerant semantics it remains a (counted) false positive.
	if len(rep.Candidates) > 2 {
		t.Fatalf("candidate set too large: %v", rep.Candidates)
	}
	if rep.CandidatesByErrorOnly != 2 { // op-a and op-b contain POST /a2
		t.Fatalf("CandidatesByErrorOnly = %d, want 2", rep.CandidatesByErrorOnly)
	}
	if rep.Precision <= 0 || rep.Precision > 1 {
		t.Fatalf("precision = %v", rep.Precision)
	}
	if rep.ReportDelay < 0 {
		t.Fatalf("negative report delay")
	}
}

func TestInterleavedOperationsStillIsolate(t *testing.T) {
	a := newAnalyzer(Config{Alpha: 64})
	s := &stream{a: a}
	// op-c interleaves with op-a; op-a fails.
	s.rest(get("/list"), 200, 1, "op-a")
	s.rest(post("/c1"), 200, 2, "op-c")
	s.rest(post("/a1"), 200, 1, "op-a")
	s.rest(get("/c2"), 200, 2, "op-c")
	s.rpcCall(rpc("build"), false, 1, "op-a")
	s.rest(post("/a2"), 503, 1, "op-a")
	s.filler(40)
	a.Flush()

	reps := a.Reports()
	if len(reps) != 1 {
		t.Fatalf("reports = %d", len(reps))
	}
	if !reps[0].Hit() {
		t.Fatalf("missed truth: %v", reps[0].Candidates)
	}
}

func TestRPCErrorSelectsUpstreamAPI(t *testing.T) {
	a := newAnalyzer(Config{Alpha: 32})
	s := &stream{a: a}
	s.rest(get("/list"), 200, 1, "op-a")
	s.rest(post("/a1"), 200, 1, "op-a")
	s.rpcCall(rpc("build"), true, 1, "op-a") // upstream RPC failure
	s.rest(get("/status"), 500, 1, "op-a")   // relayed REST error
	s.filler(20)
	a.Flush()

	reps := a.Reports()
	if len(reps) != 1 {
		t.Fatalf("reports = %d, want 1 (snapshot only on REST errors)", len(reps))
	}
	rep := reps[0]
	if rep.OffendingAPI != rpc("build") {
		t.Fatalf("offending = %v, want the upstream RPC", rep.OffendingAPI)
	}
	if len(rep.Errors) != 2 {
		t.Fatalf("errors in snapshot = %d, want 2", len(rep.Errors))
	}
	if !rep.Hit() {
		t.Fatalf("candidates = %v", rep.Candidates)
	}
}

func TestSnapshotOnlyOnRESTErrorsByDefault(t *testing.T) {
	a := newAnalyzer(Config{Alpha: 16})
	s := &stream{a: a}
	s.rpcCall(rpc("build"), true, 1, "op-a") // RPC failure alone
	s.filler(20)
	a.Flush()
	if len(a.Reports()) != 0 {
		t.Fatalf("RPC error armed a snapshot: %d reports", len(a.Reports()))
	}
	if a.Stats.Faults != 1 {
		t.Fatalf("fault not counted: %d", a.Stats.Faults)
	}

	// With the ablation flag, the RPC error alone triggers detection.
	a2 := newAnalyzer(Config{Alpha: 16, SnapshotOnRPCErrors: true})
	s2 := &stream{a: a2}
	s2.rest(post("/a1"), 200, 1, "op-a")
	s2.rpcCall(rpc("build"), true, 1, "op-a")
	s2.filler(20)
	a2.Flush()
	if len(a2.Reports()) != 1 {
		t.Fatalf("reports = %d, want 1", len(a2.Reports()))
	}
}

func TestUnknownAPIFalseNegative(t *testing.T) {
	a := newAnalyzer(Config{Alpha: 16})
	s := &stream{a: a}
	// An API never fingerprinted fails: no candidates (limitation 4).
	s.rest(trace.RESTAPI(trace.SvcSwift, "GET", "/v1/never-learned"), 500, 1, "mystery")
	s.filler(10)
	a.Flush()
	reps := a.Reports()
	if len(reps) != 1 {
		t.Fatalf("reports = %d", len(reps))
	}
	if len(reps[0].Candidates) != 0 || a.Stats.FalseNegs != 1 {
		t.Fatalf("expected false negative, got %v", reps[0].Candidates)
	}
}

func TestPerformanceFaultDetection(t *testing.T) {
	a := newAnalyzer(Config{
		Alpha:         64,
		PerfDetection: true,
		Latency:       tsoutliers.Options{Warmup: 8, MinRun: 3, MinSpread: 0.005},
	})
	s := &stream{a: a}
	// Run full op-a instances to build a steady latency baseline for
	// every API (the stream helper uses fixed 10ms gaps), then run
	// instances whose GET /status responses are 20x slower.
	runOpA := func(id uint64, slowStatus bool) {
		s.rest(get("/list"), 200, id, "op-a")
		s.rest(post("/a1"), 200, id, "op-a")
		s.rpcCall(rpc("build"), false, id, "op-a")
		s.rest(post("/a2"), 200, id, "op-a")
		if !slowStatus {
			s.rest(get("/status"), 200, id, "op-a")
			return
		}
		s.conn++
		s.ms += 10
		a.Ingest(trace.Event{Time: at(s.ms), Type: trace.RESTRequest, API: get("/status"), ConnID: s.conn, OpID: id, OpName: "op-a"})
		s.ms += 200
		a.Ingest(trace.Event{Time: at(s.ms), Type: trace.RESTResponse, API: get("/status"), Status: 200, ConnID: s.conn, OpID: id, OpName: "op-a"})
	}
	for i := 0; i < 15; i++ {
		runOpA(uint64(i+1), false)
	}
	for i := 0; i < 6; i++ {
		runOpA(uint64(100+i), true)
	}
	s.filler(40)
	a.Flush()

	if a.Stats.PerfAlarms == 0 {
		t.Fatal("no latency alarms raised")
	}
	var perf *Report
	for _, r := range a.Reports() {
		if r.Kind == Performance {
			perf = r
			break
		}
	}
	if perf == nil {
		t.Fatal("no performance report")
	}
	if perf.Latency <= 0 {
		t.Fatalf("perf latency = %v", perf.Latency)
	}
	// GET /status appears in op-a and op-b; both may match (the paper
	// reports possible operations); ground truth must be included.
	if !perf.Hit() {
		t.Fatalf("perf candidates = %v", perf.Candidates)
	}
	if det := a.LatencyDetector(get("/status")); det == nil || len(det.Shifts()) == 0 {
		t.Fatal("level shift not recorded")
	}
}

func TestGrowToCoverAblation(t *testing.T) {
	run := func(growToCover bool) int {
		a := newAnalyzer(Config{Alpha: 64, GrowToCover: growToCover})
		s := &stream{a: a}
		s.rest(get("/list"), 200, 1, "op-a")
		s.rest(post("/a1"), 200, 1, "op-a")
		s.rpcCall(rpc("build"), false, 1, "op-a")
		// Unrelated op-b runs fully elsewhere in the window.
		s.rest(get("/list"), 200, 2, "op-b")
		s.rest(post("/b1"), 200, 2, "op-b")
		s.rest(post("/a2"), 200, 2, "op-b")
		s.rest(post("/a2"), 500, 1, "op-a")
		s.filler(40)
		a.Flush()
		if len(a.Reports()) == 0 {
			t.Fatal("no reports")
		}
		return len(a.Reports()[0].Candidates)
	}
	tight := run(false)
	full := run(true)
	if tight < 1 || full < tight {
		t.Fatalf("tight=%d full=%d; growing to cover should never shrink the match set", tight, full)
	}
}

func TestOnReportCallback(t *testing.T) {
	a := newAnalyzer(Config{Alpha: 16})
	var got []*Report
	a.OnReport(func(r *Report) { got = append(got, r) })
	s := &stream{a: a}
	s.rest(post("/a2"), 500, 1, "op-a")
	s.filler(20)
	a.Flush()
	if len(got) != len(a.Reports()) || len(got) == 0 {
		t.Fatalf("callback fired %d times, reports %d", len(got), len(a.Reports()))
	}
}

func TestRCAHookInvoked(t *testing.T) {
	a := newAnalyzer(Config{Alpha: 16})
	a.SetRCA(func(r *Report) []RootCause {
		return []RootCause{{Node: "nova-node", Kind: "software", Detail: "ntp stopped"}}
	})
	s := &stream{a: a}
	s.rest(post("/a2"), 500, 1, "op-a")
	s.filler(20)
	a.Flush()
	reps := a.Reports()
	if len(reps) == 0 || len(reps[0].RootCauses) != 1 {
		t.Fatal("RCA hook not invoked")
	}
	if reps[0].RootCauses[0].String() == "" {
		t.Fatal("empty root cause string")
	}
}

func TestFaultKindString(t *testing.T) {
	if Operational.String() != "operational" || Performance.String() != "performance" ||
		FaultKind(9).String() != "unknown" {
		t.Fatal("kind strings")
	}
}

func TestMultipleFaultsMultipleReports(t *testing.T) {
	a := newAnalyzer(Config{Alpha: 32})
	s := &stream{a: a}
	s.rest(get("/list"), 200, 1, "op-a")
	s.rest(post("/a1"), 200, 1, "op-a")
	s.rpcCall(rpc("build"), false, 1, "op-a")
	s.rest(post("/a2"), 500, 1, "op-a")
	s.filler(5)
	s.rest(post("/c1"), 409, 2, "op-c")
	s.filler(40)
	a.Flush()
	if len(a.Reports()) != 2 {
		t.Fatalf("reports = %d, want 2", len(a.Reports()))
	}
	for _, r := range a.Reports() {
		if !r.Hit() {
			t.Fatalf("report for %q missed: %v", r.TruthOp, r.Candidates)
		}
	}
}

func TestPruneRPCAblationChangesPattern(t *testing.T) {
	// With pruning on (default), RPC symbols are ignored; disabling it
	// must still find the true op when RPCs are present in the window.
	a := newAnalyzer(Config{Alpha: 32, DisablePruneRPC: true})
	if a.Config().PruneRPC {
		t.Fatal("DisablePruneRPC not honored")
	}
	s := &stream{a: a}
	s.rest(get("/list"), 200, 1, "op-a")
	s.rest(post("/a1"), 200, 1, "op-a")
	s.rpcCall(rpc("build"), false, 1, "op-a")
	s.rest(post("/a2"), 500, 1, "op-a")
	s.filler(20)
	a.Flush()
	if len(a.Reports()) != 1 || !a.Reports()[0].Hit() {
		t.Fatalf("no-prune detection failed: %+v", a.Reports())
	}
}

func TestLatencySummaries(t *testing.T) {
	a := newAnalyzer(Config{Alpha: 32})
	s := &stream{a: a}
	for i := 0; i < 20; i++ {
		s.rest(get("/list"), 200, 1, "op-a")
		s.rest(post("/a1"), 200, 1, "op-a")
	}
	sums := a.LatencySummaries()
	if len(sums) != 2 {
		t.Fatalf("summaries = %d, want 2", len(sums))
	}
	for _, sum := range sums {
		if sum.Summary.Count() != 20 {
			t.Fatalf("%v count = %d", sum.API, sum.Summary.Count())
		}
		// The stream helper uses a fixed 10ms request->response gap.
		if p50 := sum.Summary.Quantile(0.5); p50 < 0.009 || p50 > 0.011 {
			t.Fatalf("%v p50 = %v, want ~10ms", sum.API, p50)
		}
	}
	// Errors are excluded from latency stats.
	s.rest(post("/a2"), 500, 1, "op-a")
	for _, sum := range a.LatencySummaries() {
		if sum.API == post("/a2") {
			t.Fatal("faulty exchange entered latency summaries")
		}
	}
}

func TestPerfCooldownSuppressesSnapshotStorm(t *testing.T) {
	mk := func(cooldown time.Duration) uint64 {
		a := newAnalyzer(Config{
			Alpha: 64, PerfDetection: true, PerfCooldown: cooldown,
			Latency: tsoutliers.Options{Warmup: 8, MinRun: 3, MinSpread: 0.005},
		})
		s := &stream{a: a}
		// Baseline, then a long run of slow exchanges on one API.
		for i := 0; i < 20; i++ {
			s.rest(get("/status"), 200, 1, "op-a")
		}
		for i := 0; i < 15; i++ {
			s.conn++
			s.ms += 10
			a.Ingest(trace.Event{Time: at(s.ms), Type: trace.RESTRequest, API: get("/status"), ConnID: s.conn})
			s.ms += 300
			a.Ingest(trace.Event{Time: at(s.ms), Type: trace.RESTResponse, API: get("/status"), Status: 200, ConnID: s.conn})
		}
		a.Flush()
		return a.Stats.Snapshots
	}
	storm := mk(-1)                // cooldown disabled
	calmed := mk(10 * time.Second) // sustained anomaly within one window
	if calmed >= storm {
		t.Fatalf("cooldown did not reduce snapshots: %d vs %d", calmed, storm)
	}
	if calmed == 0 {
		t.Fatal("cooldown suppressed the first snapshot too")
	}
}
