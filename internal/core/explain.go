// Evidence assembly for explain mode: when an evidence-trace store is
// installed (SetExplain), every detection also records the full
// Algorithm 2 decision — the frozen window, the span tree of paired
// exchanges in the final context buffer, every candidate's score and
// rejection reason, each β growth step, and the HANSEL-style identifier
// chain around the fault. All of it is assembled inside detect, on the
// detect workers, from the snapshot and immutable analyzer state — the
// ingest hot path never sees any of this, and with no store installed
// detect pays a single nil check.
//
// Every recorded value derives from event (virtual) time, receiver
// sequence numbers, and deterministic walks, so traces are identical
// across DetectWorkers settings (the trace ID itself is assigned on the
// receiver goroutine, in fault-arrival order).
package core

import (
	"time"

	"gretel/internal/fingerprint"
	"gretel/internal/hansel"
	"gretel/internal/trace"
	"gretel/internal/tracestore"
	"gretel/internal/window"
)

// SetExplain installs the evidence-trace store, enabling explain mode.
// Pass nil to disable (the default): disabled, no evidence work happens
// anywhere and reports are byte-identical to a build without the
// subsystem.
func (a *Analyzer) SetExplain(s *tracestore.Store) { a.explain = s }

// ExplainStore returns the installed evidence-trace store, or nil.
func (a *Analyzer) ExplainStore() *tracestore.Store { return a.explain }

// SetRCAExplain installs the explaining RCA hook: like SetRCA, but the
// hook also returns the evidence (nodes examined, metric windows,
// watcher statuses) behind the verdict, which is attached to the
// report's evidence trace. When both hooks are set, this one wins.
func (a *Analyzer) SetRCAExplain(fn func(*Report) ([]RootCause, *tracestore.RCAEvidence)) {
	a.rcaExplain = fn
}

// newEvidence starts a report's evidence trace: identity, matcher
// configuration, and the frozen-window summary.
func (a *Analyzer) newEvidence(traceID uint64, faultEv trace.Event, kind FaultKind, latency time.Duration, snap *window.Snapshot) *tracestore.Trace {
	future := len(snap.Events) - 1 - snap.FaultIndex
	ev := &tracestore.Trace{
		ID:          traceID,
		Kind:        kind.String(),
		FaultSeq:    faultEv.Seq,
		FaultTime:   faultEv.Time,
		LatencyMs:   latency.Seconds() * 1000,
		StrictMatch: a.cfg.StrictMatch,
		RPCPruned:   a.cfg.PruneRPC,
		Window: tracestore.Window{
			Alpha:        a.cfg.Alpha,
			Events:       len(snap.Events),
			FaultIndex:   snap.FaultIndex,
			PastEvents:   snap.FaultIndex,
			FutureEvents: future,
			FirstSeq:     snap.Events[0].Seq,
			LastSeq:      snap.Events[len(snap.Events)-1].Seq,
			// Fewer future slides than α/2 means the snapshot fired on
			// Flush (end of stream) rather than filling naturally.
			Truncated: future < a.cfg.Alpha/2,
		},
	}
	return ev
}

// recordErrors copies the snapshot's error events into the evidence.
func recordErrors(ev *tracestore.Trace, errors []trace.Event) {
	ev.Errors = make([]tracestore.EventRef, 0, len(errors))
	for i := range errors {
		e := &errors[i]
		ev.Errors = append(ev.Errors, tracestore.EventRef{
			Seq: e.Seq, Time: e.Time, Type: e.Type.String(), API: e.API.String(),
			Node: e.SrcNode, Status: e.Status, Error: e.ErrorText,
		})
	}
}

// explainCandidates re-runs every candidate against the FINAL context
// buffer through the explaining matchers, which share their walks with
// the production matchers — the verdicts reproduce rep.Candidates
// exactly (growContext returns the set matched at the β it returns).
func (a *Analyzer) explainCandidates(ev *tracestore.Trace, preps []prepared, pattern []rune, idx *fingerprint.SnapshotIndex, corrFiltered bool) {
	variants := make(map[string]int, len(preps))
	ev.Candidates = make([]tracestore.Candidate, 0, len(preps))
	for _, p := range preps {
		variant := variants[p.name]
		variants[p.name] = variant + 1
		c := tracestore.Candidate{
			Name: p.name, Variant: variant,
			FPLen: p.fp.Len(), Truncated: p.truncated,
		}
		if p.fp.Len() == 0 {
			c.Reason = "empty fingerprint after truncation and RPC pruning"
			ev.Candidates = append(ev.Candidates, c)
			continue
		}
		var exp fingerprint.Explanation
		switch {
		case a.cfg.StrictMatch:
			exp = p.fp.ExplainStrict(pattern, a.lib.Table)
		case corrFiltered:
			exp = p.fp.ExplainCorrelated(idx, a.lib.Table)
		default:
			exp = p.fp.ExplainRelaxed(idx, a.lib.Table)
		}
		c.Matched = exp.Matched
		c.Score = exp.Score
		c.MandatoryHit = exp.Satisfied
		c.MandatoryTotal = exp.MandatoryTotal
		c.Omitted = exp.Omitted
		c.Reason = exp.Reason
		ev.Candidates = append(ev.Candidates, c)
	}
}

// finalizeEvidence fills everything known once matching has settled:
// the verdict, the span tree over the final context buffer, and the
// identifier chain.
func (a *Analyzer) finalizeEvidence(ev *tracestore.Trace, rep *Report, ctx []trace.Event) {
	ev.OffendingAPI = rep.OffendingAPI.String()
	ev.DetectedAt = rep.DetectedAt
	ev.Matched = append([]string(nil), rep.Candidates...)
	ev.Beta = rep.Beta
	ev.Precision = rep.Precision
	ev.Spans = buildSpans(ctx, rep.Fault.Seq)
	ev.Chain, ev.ChainTruncated = faultChain(ctx, rep.Fault.Seq)
}

// maxChainLinks caps recorded identifier-chain links per trace; the
// overflow is counted in ChainTruncated, never dropped silently.
const maxChainLinks = 64

// faultChain runs HANSEL-style identifier stitching over the context
// buffer and records the chain containing the fault. Chains of one
// (the fault linked to nothing) carry no cross-operation evidence and
// are skipped.
func faultChain(ctx []trace.Event, faultSeq uint64) ([]tracestore.ChainLink, int) {
	links := hansel.FaultChain(ctx, faultSeq, hansel.Config{})
	if len(links) <= 1 {
		return nil, 0
	}
	truncated := 0
	if len(links) > maxChainLinks {
		// Keep the most recent links — the ones leading into the fault.
		truncated = len(links) - maxChainLinks
		links = links[len(links)-maxChainLinks:]
	}
	out := make([]tracestore.ChainLink, len(links))
	for i, l := range links {
		out[i] = tracestore.ChainLink{Seq: l.Seq, Time: l.Time, API: l.API.String(), Ident: l.Ident}
	}
	return out, truncated
}

// openSpan tracks an in-flight REST exchange during the span-tree walk,
// with the metadata parent inference needs.
type openSpan struct {
	idx     int
	corrID  string
	dstNode string
}

// buildSpans pairs the context buffer's messages into a span tree:
// REST exchanges by connection, RPC exchanges by message id, casts as
// points. An exchange nests under the innermost open REST span stamped
// with its correlation id when one is present, else under the innermost
// open REST span served by the node that issued it — never under
// ground-truth operation identity, which the detector must not read.
// Half-exchanges whose other side fell outside the buffer stay as
// unpaired point spans, so every message is represented.
func buildSpans(ctx []trace.Event, faultSeq uint64) []tracestore.Span {
	spans := make([]tracestore.Span, 0, len(ctx)/2+1)
	openREST := make(map[uint64]int) // ConnID -> span index
	openRPC := make(map[string]int)  // MsgID -> span index
	open := make([]openSpan, 0, 8)   // open REST spans, outermost first

	closeOpen := func(idx int) {
		for i := len(open) - 1; i >= 0; i-- {
			if open[i].idx == idx {
				open = append(open[:i], open[i+1:]...)
				return
			}
		}
	}
	parentFor := func(e *trace.Event) int {
		if e.CorrID != "" {
			for i := len(open) - 1; i >= 0; i-- {
				if open[i].corrID == e.CorrID {
					return open[i].idx
				}
			}
		}
		for i := len(open) - 1; i >= 0; i-- {
			if open[i].dstNode != "" && open[i].dstNode == e.SrcNode {
				return open[i].idx
			}
		}
		return -1
	}
	point := func(e *trace.Event, kind, node string, unpaired bool) int {
		idx := len(spans)
		spans = append(spans, tracestore.Span{
			ID: idx, Parent: parentFor(e), API: e.API.String(), Kind: kind,
			Node: node, StartSeq: e.Seq, EndSeq: e.Seq, Start: e.Time,
			Status: e.Status, Error: e.ErrorText,
			Fault: e.Seq == faultSeq, Unpaired: unpaired,
		})
		return idx
	}

	for i := range ctx {
		e := &ctx[i]
		switch e.Type {
		case trace.RESTRequest:
			idx := len(spans)
			spans = append(spans, tracestore.Span{
				ID: idx, Parent: parentFor(e), API: e.API.String(), Kind: "REST",
				Node: e.DstNode, StartSeq: e.Seq, EndSeq: e.Seq, Start: e.Time,
				Fault: e.Seq == faultSeq, Unpaired: true,
			})
			openREST[e.ConnID] = idx
			open = append(open, openSpan{idx: idx, corrID: e.CorrID, dstNode: e.DstNode})
		case trace.RESTResponse:
			if idx, ok := openREST[e.ConnID]; ok {
				sp := &spans[idx]
				sp.EndSeq = e.Seq
				sp.Duration = e.Time.Sub(sp.Start)
				sp.Status = e.Status
				sp.Error = e.ErrorText
				sp.Unpaired = false
				sp.Fault = sp.Fault || e.Seq == faultSeq
				delete(openREST, e.ConnID)
				closeOpen(idx)
			} else {
				// Request slid out of the buffer: the response alone still
				// carries the status, node, and fault marker.
				spans = append(spans, tracestore.Span{
					ID: len(spans), Parent: -1, API: e.API.String(), Kind: "REST",
					Node: e.SrcNode, StartSeq: e.Seq, EndSeq: e.Seq, Start: e.Time,
					Status: e.Status, Error: e.ErrorText,
					Fault: e.Seq == faultSeq, Unpaired: true,
				})
			}
		case trace.RPCCall:
			idx := len(spans)
			spans = append(spans, tracestore.Span{
				ID: idx, Parent: parentFor(e), API: e.API.String(), Kind: "RPC",
				Node: e.DstNode, StartSeq: e.Seq, EndSeq: e.Seq, Start: e.Time,
				Fault: e.Seq == faultSeq, Unpaired: true,
			})
			if e.MsgID != "" {
				openRPC[e.MsgID] = idx
			}
		case trace.RPCReply:
			if idx, ok := openRPC[e.MsgID]; ok {
				sp := &spans[idx]
				sp.EndSeq = e.Seq
				sp.Duration = e.Time.Sub(sp.Start)
				sp.Status = e.Status
				sp.Error = e.ErrorText
				sp.Unpaired = false
				sp.Fault = sp.Fault || e.Seq == faultSeq
				delete(openRPC, e.MsgID)
			} else {
				point(e, "RPC", e.SrcNode, true)
			}
		case trace.RPCCast:
			// Fire-and-forget: a point span by design, not an unpaired one.
			point(e, "RPC-cast", e.DstNode, false)
		}
	}
	return spans
}
