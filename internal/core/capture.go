// Durable event-plane hook: every event entering the analyzer can be
// handed to a write-ahead capture (implemented by wal.Log) before any
// analyzer state mutates, so a crash never loses evidence the process
// had already accepted. The hook is deliberately an interface — core
// stays free of storage dependencies, and tests capture with fakes.

package core

import (
	"gretel/internal/telemetry"
	"gretel/internal/trace"
)

// mCaptureErrors counts appends the durable event plane failed to ack;
// the events were still processed, just not captured.
var mCaptureErrors = telemetry.GetCounter("core.capture_errors")

// Capture is the durable event plane attached with SetCapture.
// AppendBatch must make evs durable (per its own policy) and return the
// record sequence of the last event acked; MarkProcessed is called once
// every record at or below seq has been fully processed, advancing the
// consumer cursor a restart resumes from.
type Capture interface {
	AppendBatch(evs []trace.Event) (lastSeq uint64, err error)
	MarkProcessed(seq uint64)
}

// SetCapture attaches (or with nil detaches) the durable event plane.
// Call from the ingest goroutine, like Ingest — typically once before
// driving events. Boot-time WAL replay runs with capture detached so
// recovered events are not appended a second time.
func (a *Analyzer) SetCapture(c Capture) { a.capture = c }

// captureEvents hands a batch to the capture hook. Append failure is
// counted and logged but never stops ingest: the analyzer exists to
// observe faults, and a full disk must not blind it.
func (a *Analyzer) captureEvents(evs []trace.Event) {
	last, err := a.capture.AppendBatch(evs)
	a.captureLast = last
	if err != nil {
		a.Stats.CaptureErrors++
		mCaptureErrors.Inc()
		telemetry.LogFirst("core.capture", "core: durable capture failed (ingest continues uncaptured): %v", err)
	}
}

// endCapture closes out one top-level ingest call: the events captured
// at its start are now fully processed, so the consumer cursor may
// advance to their last record.
func (a *Analyzer) endCapture() {
	a.capturing = false
	if a.capture != nil && a.captureLast > 0 {
		a.capture.MarkProcessed(a.captureLast)
	}
}
