package core

import (
	"bytes"
	"reflect"
	"sort"
	"testing"

	"gretel/internal/tracestore"
)

// TestExplainTraceReconstructsDecision is the tentpole contract: every
// report produced in explain mode resolves to a stored evidence trace
// whose window, growth steps, candidate scores, and rejection reasons
// fully reconstruct the Algorithm 2 decision.
func TestExplainTraceReconstructsDecision(t *testing.T) {
	store := tracestore.New(0)
	a := driveFaultyExplain(Config{Alpha: 32}, store)
	reps := a.Reports()
	if len(reps) == 0 {
		t.Fatal("no reports produced")
	}
	if store.Len() != len(reps) {
		t.Fatalf("store holds %d traces for %d reports", store.Len(), len(reps))
	}

	for i, rep := range reps {
		if rep.TraceID == 0 {
			t.Fatalf("report %d has no trace id", i)
		}
		if rep.TraceID != uint64(i+1) {
			t.Fatalf("report %d trace id = %d, want fault-arrival order %d", i, rep.TraceID, i+1)
		}
		tr := store.Get(rep.TraceID)
		if tr == nil {
			t.Fatalf("report %d: trace %d not stored", i, rep.TraceID)
		}

		// Identity and verdict match the report exactly.
		if tr.OffendingAPI != rep.OffendingAPI.String() || tr.Kind != rep.Kind.String() {
			t.Fatalf("trace %d identity: %s/%s vs report %s/%s",
				tr.ID, tr.Kind, tr.OffendingAPI, rep.Kind, rep.OffendingAPI)
		}
		if tr.FaultSeq != rep.Fault.Seq || !tr.FaultTime.Equal(rep.Fault.Time) {
			t.Fatalf("trace %d fault identity differs", tr.ID)
		}
		if !reflect.DeepEqual(tr.Matched, rep.Candidates) {
			t.Fatalf("trace %d matched %v != report candidates %v", tr.ID, tr.Matched, rep.Candidates)
		}
		if tr.Beta != rep.Beta || tr.Precision != rep.Precision {
			t.Fatalf("trace %d beta/precision %d/%.3f != report %d/%.3f",
				tr.ID, tr.Beta, tr.Precision, rep.Beta, rep.Precision)
		}

		// The candidate table reproduces the verdict: the matched names
		// are exactly the report's candidate set, every rejected
		// candidate carries a concrete reason, and scores are sane.
		var matchedNames []string
		for _, c := range tr.Candidates {
			if c.Matched {
				matchedNames = append(matchedNames, c.Name)
				if c.Score != 1 {
					t.Fatalf("trace %d: matched %s score %.2f != 1", tr.ID, c.Name, c.Score)
				}
			} else {
				if c.Reason == "" {
					t.Fatalf("trace %d: rejected %s without a reason", tr.ID, c.Name)
				}
				if c.Score < 0 || c.Score >= 1 {
					t.Fatalf("trace %d: rejected %s score %.2f", tr.ID, c.Name, c.Score)
				}
			}
		}
		wantNames := append([]string(nil), rep.Candidates...)
		sort.Strings(matchedNames)
		sort.Strings(wantNames)
		if !reflect.DeepEqual(matchedNames, wantNames) {
			t.Fatalf("trace %d candidate verdicts %v != report %v", tr.ID, matchedNames, wantNames)
		}

		// The growth log reconstructs the β loop: monotonically growing
		// steps ending in either coverage or the stop rule, and the step
		// the verdict came from carries exactly the verdict's set.
		if rep.Kind == Operational {
			if len(tr.Growth) == 0 {
				t.Fatalf("trace %d: no growth steps", tr.ID)
			}
			verdictStep := -1
			for j, g := range tr.Growth {
				if j > 0 && g.Beta <= tr.Growth[j-1].Beta {
					t.Fatalf("trace %d: growth beta not increasing at step %d", tr.ID, j)
				}
				if g.Stopped && j != len(tr.Growth)-1 {
					t.Fatalf("trace %d: stop-rule step %d is not last", tr.ID, j)
				}
				if !g.Stopped && g.Beta == tr.Beta {
					verdictStep = j
				}
			}
			if verdictStep < 0 {
				t.Fatalf("trace %d: no growth step at verdict beta %d", tr.ID, tr.Beta)
			}
			if !reflect.DeepEqual(tr.Growth[verdictStep].Matched, rep.Candidates) {
				t.Fatalf("trace %d: verdict step matched %v != %v",
					tr.ID, tr.Growth[verdictStep].Matched, rep.Candidates)
			}
			last := tr.Growth[len(tr.Growth)-1]
			if !last.Stopped && !last.Covered {
				t.Fatalf("trace %d: growth ended without coverage or stop rule", tr.ID)
			}
		}

		// The window and span tree hold the evidence events: a span for
		// the fault, every span inside the snapshot's sequence bounds,
		// and the error list non-empty for operational faults.
		if tr.Window.Events == 0 || tr.Window.FirstSeq == 0 {
			t.Fatalf("trace %d: empty window summary %+v", tr.ID, tr.Window)
		}
		if len(tr.Spans) == 0 {
			t.Fatalf("trace %d: no spans", tr.ID)
		}
		faultSpans := 0
		for _, sp := range tr.Spans {
			if sp.StartSeq < tr.Window.FirstSeq || sp.EndSeq > tr.Window.LastSeq {
				t.Fatalf("trace %d: span %d [%d..%d] outside window [%d..%d]",
					tr.ID, sp.ID, sp.StartSeq, sp.EndSeq, tr.Window.FirstSeq, tr.Window.LastSeq)
			}
			if sp.Parent >= sp.ID {
				t.Fatalf("trace %d: span %d parent %d not earlier", tr.ID, sp.ID, sp.Parent)
			}
			if sp.Fault {
				faultSpans++
			}
		}
		if faultSpans != 1 {
			t.Fatalf("trace %d: %d fault spans, want 1", tr.ID, faultSpans)
		}
		if rep.Kind == Operational && len(tr.Errors) == 0 {
			t.Fatalf("trace %d: no error events recorded", tr.ID)
		}
	}
}

// TestExplainOnLeavesVerdictsUntouched compares a run with explain on
// against the plain run: identical reports except for the trace link.
func TestExplainOnLeavesVerdictsUntouched(t *testing.T) {
	plain := driveFaulty(Config{Alpha: 32})
	explained := driveFaultyExplain(Config{Alpha: 32}, tracestore.New(0))
	rp, re := plain.Reports(), explained.Reports()
	if len(rp) != len(re) || len(rp) == 0 {
		t.Fatalf("report counts: plain=%d explained=%d", len(rp), len(re))
	}
	for i := range rp {
		cp := *re[i]
		cp.TraceID = 0 // the only permitted difference
		if !reflect.DeepEqual(*rp[i], cp) {
			t.Fatalf("report %d differs beyond TraceID:\nplain:     %+v\nexplained: %+v", i, *rp[i], cp)
		}
	}
	if plain.Stats != explained.Stats {
		t.Fatalf("stats differ: %+v vs %+v", plain.Stats, explained.Stats)
	}
}

// TestExplainDeterministicAcrossWorkers extends the pipeline determinism
// contract to evidence traces: the stores from an inline run and an
// 8-worker run must serialize byte-identically.
func TestExplainDeterministicAcrossWorkers(t *testing.T) {
	s0 := tracestore.New(0)
	s8 := tracestore.New(0)
	inline := driveFaultyExplain(Config{Alpha: 32}, s0)
	parallel := driveFaultyExplain(Config{Alpha: 32, DetectWorkers: 8, DetectBacklog: 2}, s8)

	ri, rp := inline.Reports(), parallel.Reports()
	if len(ri) == 0 || len(ri) != len(rp) {
		t.Fatalf("report counts differ: inline=%d parallel=%d", len(ri), len(rp))
	}
	for i := range ri {
		if !reflect.DeepEqual(*ri[i], *rp[i]) {
			t.Fatalf("report %d differs (TraceID %d vs %d)", i, ri[i].TraceID, rp[i].TraceID)
		}
	}

	var b0, b8 bytes.Buffer
	if err := tracestore.WriteNDJSON(&b0, s0.All()); err != nil {
		t.Fatal(err)
	}
	if err := tracestore.WriteNDJSON(&b8, s8.All()); err != nil {
		t.Fatal(err)
	}
	if b0.Len() == 0 {
		t.Fatal("no traces serialized")
	}
	if !bytes.Equal(b0.Bytes(), b8.Bytes()) {
		t.Fatal("evidence traces differ between DetectWorkers:0 and DetectWorkers:8")
	}
}

// TestExplainRCAEvidenceAttached verifies the explaining RCA hook's
// evidence lands on the stored trace alongside the stringified verdict.
func TestExplainRCAEvidenceAttached(t *testing.T) {
	store := tracestore.New(0)
	a := newAnalyzer(Config{Alpha: 32})
	a.SetExplain(store)
	a.SetRCAExplain(func(r *Report) ([]RootCause, *tracestore.RCAEvidence) {
		return []RootCause{{Node: "n1", Kind: "resource", Detail: "low disk"}},
			&tracestore.RCAEvidence{Nodes: []tracestore.RCANode{{Node: "n1", Stage: "error", Up: true}}}
	})
	s := &stream{a: a}
	s.rest(post("/a2"), 500, 1, "op-a")
	s.filler(40)
	a.Close()

	reps := a.Reports()
	if len(reps) == 0 {
		t.Fatal("no report")
	}
	tr := store.Get(reps[0].TraceID)
	if tr == nil {
		t.Fatal("no trace stored")
	}
	if tr.RCA == nil || len(tr.RCA.Nodes) != 1 || tr.RCA.Nodes[0].Node != "n1" {
		t.Fatalf("RCA evidence = %+v", tr.RCA)
	}
	if len(tr.RootCauses) != 1 || tr.RootCauses[0] != reps[0].RootCauses[0].String() {
		t.Fatalf("root causes = %v", tr.RootCauses)
	}
}
