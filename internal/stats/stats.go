// Package stats provides streaming summaries (count/mean/min/max plus
// reservoir-sampled quantiles) for per-API latency reporting. The
// analyzer keeps one summary per API so operators get p50/p95/p99
// alongside the anomaly detectors — collectd-style observability over
// GRETEL's own measurements.
package stats

import (
	"encoding/json"
	"fmt"
	"sort"
)

// reservoirSize bounds memory per summary; 1024 samples give quantile
// estimates well within a few percent for the smooth latency
// distributions involved.
const reservoirSize = 1024

// Summary is a streaming summary of one series. Not safe for concurrent
// use (the analyzer is single-threaded).
type Summary struct {
	count    uint64
	sum      float64
	min, max float64

	// Deterministic reservoir sampling (xorshift state seeded from the
	// first values) keeps a uniform sample without math/rand.
	reservoir []float64
	rngState  uint64
	sorted    bool
}

// rngSeed is the xorshift state every fresh summary starts from, so
// reservoir sampling is deterministic per series.
const rngSeed = 0x9e3779b97f4a7c15

// NewSummary returns an empty summary. The struct never holds ±Inf
// sentinels: min/max are seeded by the first observation, so every
// accessor — and any serialization of the summary — yields finite
// values even before the first Observe.
func NewSummary() *Summary {
	return &Summary{rngState: rngSeed}
}

// poolSlab is how many summaries a Pool allocates at once.
const poolSlab = 16

// Pool hands out summaries carved from slab allocations, for owners
// that create one summary per key on a hot path (the analyzer's
// per-API latency tracking): one allocation per poolSlab summaries
// instead of one each. Summaries live as long as their owner; the pool
// does not take them back. The zero value is ready to use. Not safe
// for concurrent use, like Summary itself.
type Pool struct {
	slab []Summary
}

// Get returns a fresh summary, indistinguishable from NewSummary().
func (p *Pool) Get() *Summary {
	if len(p.slab) == 0 {
		p.slab = make([]Summary, poolSlab)
	}
	s := &p.slab[0]
	p.slab = p.slab[1:]
	s.rngState = rngSeed
	return s
}

func (s *Summary) rand() uint64 {
	s.rngState ^= s.rngState << 13
	s.rngState ^= s.rngState >> 7
	s.rngState ^= s.rngState << 17
	return s.rngState
}

// Observe adds one value.
func (s *Summary) Observe(v float64) {
	s.count++
	s.sum += v
	if s.count == 1 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	s.sorted = false
	if len(s.reservoir) < reservoirSize {
		s.reservoir = append(s.reservoir, v)
		return
	}
	// Vitter's Algorithm R: replace a random slot with probability
	// reservoirSize/count.
	if idx := s.rand() % s.count; idx < reservoirSize {
		s.reservoir[idx] = v
	}
}

// Count reports the number of observations.
func (s *Summary) Count() uint64 { return s.count }

// Mean returns the running mean (0 when empty).
func (s *Summary) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return s.sum / float64(s.count)
}

// Min returns the minimum observation (0 when empty).
func (s *Summary) Min() float64 {
	if s.count == 0 {
		return 0
	}
	return s.min
}

// Max returns the maximum observation (0 when empty).
func (s *Summary) Max() float64 {
	if s.count == 0 {
		return 0
	}
	return s.max
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the reservoir.
func (s *Summary) Quantile(q float64) float64 {
	if len(s.reservoir) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.reservoir)
		s.sorted = true
	}
	if q <= 0 {
		return s.reservoir[0]
	}
	if q >= 1 {
		return s.reservoir[len(s.reservoir)-1]
	}
	pos := q * float64(len(s.reservoir)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s.reservoir) {
		return s.reservoir[lo]
	}
	return s.reservoir[lo]*(1-frac) + s.reservoir[lo+1]*frac
}

// String renders count/mean/p50/p95/p99/max.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g",
		s.count, s.Mean(), s.Quantile(0.5), s.Quantile(0.95), s.Quantile(0.99), s.Max())
}

// MarshalJSON emits the operator-facing digest (count, mean, min, max,
// p50/p95/p99). Every field is finite — an empty summary marshals as
// all zeros — so structs embedding a Summary (e.g. core.APILatency)
// are always JSON-encodable.
func (s *Summary) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Count          uint64
		Mean, Min, Max float64
		P50, P95, P99  float64
	}{s.Count(), s.Mean(), s.Min(), s.Max(), s.Quantile(0.5), s.Quantile(0.95), s.Quantile(0.99)})
}
