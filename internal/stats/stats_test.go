package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEmptySummary(t *testing.T) {
	s := NewSummary()
	if s.Count() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Quantile(0.5) != 0 {
		t.Fatalf("empty summary not zeroed: %s", s)
	}
}

// TestEmptySummaryNoPoisonValues is the regression test for the ±Inf
// sentinels NewSummary used to seed min/max with: nothing an empty
// summary exposes — accessors, String, or JSON — may carry an Inf, and
// the struct itself must not hold one (a marshal of raw state would
// fail on it).
func TestEmptySummaryNoPoisonValues(t *testing.T) {
	s := NewSummary()
	if math.IsInf(s.min, 0) || math.IsInf(s.max, 0) {
		t.Fatalf("empty summary holds Inf sentinels: min=%v max=%v", s.min, s.max)
	}
	if out := s.String(); strings.Contains(out, "Inf") {
		t.Fatalf("String leaks Inf: %q", out)
	}
	buf, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("empty summary does not marshal: %v", err)
	}
	if strings.Contains(string(buf), "Inf") || strings.Contains(string(buf), "null") {
		t.Fatalf("marshal leaks poison values: %s", buf)
	}
}

// TestSummaryMarshalJSON checks the digest a populated summary emits.
func TestSummaryMarshalJSON(t *testing.T) {
	s := NewSummary()
	for _, v := range []float64{-2, 4, 6} {
		s.Observe(v)
	}
	buf, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Count          uint64
		Mean, Min, Max float64
	}
	if err := json.Unmarshal(buf, &got); err != nil {
		t.Fatalf("digest does not round-trip: %v (%s)", err, buf)
	}
	if got.Count != 3 || got.Min != -2 || got.Max != 6 || math.Abs(got.Mean-8.0/3) > 1e-12 {
		t.Fatalf("digest wrong: %+v from %s", got, buf)
	}
}

// TestAllNegativeObservations pins min/max seeding from the first
// value: without Inf sentinels, a series that never crosses zero must
// still report its true extrema.
func TestAllNegativeObservations(t *testing.T) {
	s := NewSummary()
	for _, v := range []float64{-5, -1, -9} {
		s.Observe(v)
	}
	if s.Min() != -9 || s.Max() != -1 {
		t.Fatalf("extrema wrong: min=%v max=%v", s.Min(), s.Max())
	}
}

func TestBasicMoments(t *testing.T) {
	s := NewSummary()
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Observe(v)
	}
	if s.Count() != 5 || s.Mean() != 3 || s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("moments wrong: %s", s)
	}
}

func TestExactQuantilesSmallN(t *testing.T) {
	s := NewSummary()
	for i := 100; i >= 1; i-- { // reversed insertion order
		s.Observe(float64(i))
	}
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Fatalf("q1 = %v", got)
	}
	if got := s.Quantile(0.5); math.Abs(got-50.5) > 1 {
		t.Fatalf("median = %v, want ~50.5", got)
	}
	if got := s.Quantile(0.95); math.Abs(got-95) > 2 {
		t.Fatalf("p95 = %v", got)
	}
}

func TestReservoirQuantilesLargeN(t *testing.T) {
	s := NewSummary()
	rng := rand.New(rand.NewSource(1))
	// 100k uniform [0, 1000): quantiles should land near q*1000.
	for i := 0; i < 100000; i++ {
		s.Observe(rng.Float64() * 1000)
	}
	for _, q := range []float64{0.25, 0.5, 0.9, 0.99} {
		got := s.Quantile(q)
		want := q * 1000
		if math.Abs(got-want) > 60 { // reservoir of 1024: a few % error
			t.Fatalf("q%.2f = %.1f, want ~%.1f", q, got, want)
		}
	}
	if s.Count() != 100000 {
		t.Fatalf("count = %d", s.Count())
	}
}

func TestDeterministic(t *testing.T) {
	mk := func() float64 {
		s := NewSummary()
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 50000; i++ {
			s.Observe(rng.NormFloat64())
		}
		return s.Quantile(0.9)
	}
	if mk() != mk() {
		t.Fatal("summaries are not deterministic")
	}
}

func TestInterleavedObserveAndQuantile(t *testing.T) {
	// Quantile sorts the reservoir; later Observes must still work.
	s := NewSummary()
	for i := 0; i < 10; i++ {
		s.Observe(float64(i))
	}
	_ = s.Quantile(0.5)
	s.Observe(100)
	if s.Max() != 100 || s.Quantile(1) != 100 {
		t.Fatalf("post-quantile observe lost: %s", s)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(values []float64) bool {
		if len(values) == 0 {
			return true
		}
		s := NewSummary()
		for _, v := range values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			s.Observe(v)
		}
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
			cur := s.Quantile(q)
			if cur < prev {
				return false
			}
			if cur < s.Min() || cur > s.Max() {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPoolSummariesMatchNewSummary(t *testing.T) {
	var p Pool
	a, b := p.Get(), p.Get()
	if a == b {
		t.Fatal("pool handed out the same summary twice")
	}
	ref := NewSummary()
	for i := 0; i < 2000; i++ {
		v := float64(i%97) * 1.5
		a.Observe(v)
		ref.Observe(v)
		b.Observe(-v) // interleave: slab neighbors must not interfere
	}
	if a.Count() != ref.Count() || a.Mean() != ref.Mean() || a.Min() != ref.Min() || a.Max() != ref.Max() {
		t.Fatalf("pooled summary drifted: %v vs %v", a, ref)
	}
	// Identical reservoir sampling: same rng seed, same observations.
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if a.Quantile(q) != ref.Quantile(q) {
			t.Fatalf("q%.2f: pooled %v, NewSummary %v", q, a.Quantile(q), ref.Quantile(q))
		}
	}
	if b.Max() != 0 || b.Min() != -96*1.5 {
		t.Fatalf("neighbor summary corrupted: %v", b)
	}
}

func TestPoolAmortizesAllocations(t *testing.T) {
	var p Pool
	p.Get() // warm: first Get pays the slab
	allocs := testing.AllocsPerRun(100, func() { p.Get() })
	if allocs >= 1 {
		t.Fatalf("Pool.Get averages %.2f allocs/op, want amortized < 1", allocs)
	}
}
