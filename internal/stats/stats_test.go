package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptySummary(t *testing.T) {
	s := NewSummary()
	if s.Count() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Quantile(0.5) != 0 {
		t.Fatalf("empty summary not zeroed: %s", s)
	}
}

func TestBasicMoments(t *testing.T) {
	s := NewSummary()
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Observe(v)
	}
	if s.Count() != 5 || s.Mean() != 3 || s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("moments wrong: %s", s)
	}
}

func TestExactQuantilesSmallN(t *testing.T) {
	s := NewSummary()
	for i := 100; i >= 1; i-- { // reversed insertion order
		s.Observe(float64(i))
	}
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Fatalf("q1 = %v", got)
	}
	if got := s.Quantile(0.5); math.Abs(got-50.5) > 1 {
		t.Fatalf("median = %v, want ~50.5", got)
	}
	if got := s.Quantile(0.95); math.Abs(got-95) > 2 {
		t.Fatalf("p95 = %v", got)
	}
}

func TestReservoirQuantilesLargeN(t *testing.T) {
	s := NewSummary()
	rng := rand.New(rand.NewSource(1))
	// 100k uniform [0, 1000): quantiles should land near q*1000.
	for i := 0; i < 100000; i++ {
		s.Observe(rng.Float64() * 1000)
	}
	for _, q := range []float64{0.25, 0.5, 0.9, 0.99} {
		got := s.Quantile(q)
		want := q * 1000
		if math.Abs(got-want) > 60 { // reservoir of 1024: a few % error
			t.Fatalf("q%.2f = %.1f, want ~%.1f", q, got, want)
		}
	}
	if s.Count() != 100000 {
		t.Fatalf("count = %d", s.Count())
	}
}

func TestDeterministic(t *testing.T) {
	mk := func() float64 {
		s := NewSummary()
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 50000; i++ {
			s.Observe(rng.NormFloat64())
		}
		return s.Quantile(0.9)
	}
	if mk() != mk() {
		t.Fatal("summaries are not deterministic")
	}
}

func TestInterleavedObserveAndQuantile(t *testing.T) {
	// Quantile sorts the reservoir; later Observes must still work.
	s := NewSummary()
	for i := 0; i < 10; i++ {
		s.Observe(float64(i))
	}
	_ = s.Quantile(0.5)
	s.Observe(100)
	if s.Max() != 100 || s.Quantile(1) != 100 {
		t.Fatalf("post-quantile observe lost: %s", s)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(values []float64) bool {
		if len(values) == 0 {
			return true
		}
		s := NewSummary()
		for _, v := range values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			s.Observe(v)
		}
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
			cur := s.Quantile(q)
			if cur < prev {
				return false
			}
			if cur < s.Min() || cur > s.Max() {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
