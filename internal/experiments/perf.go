package experiments

import (
	"fmt"
	"strings"
	"time"

	"gretel/internal/agent"
	"gretel/internal/core"
	"gretel/internal/faults"
	"gretel/internal/fingerprint"
	"gretel/internal/openstack"
	"gretel/internal/tempest"
	"gretel/internal/trace"
	"gretel/internal/tsoutliers"
)

// LatencyPoint is one observation of a tracked API's latency, with the
// detector's shift-adjusted value (the paper's blue series).
type LatencyPoint struct {
	Time     time.Time
	Latency  time.Duration
	Adjusted time.Duration
}

// LatencySeries is the tracked API's full record for a run: the raw and
// adjusted series plus the alarms and level shifts raised — everything
// Figs 6 and 8b plot.
type LatencySeries struct {
	API    trace.API
	Points []LatencyPoint
	Alarms []tsoutliers.Alarm
	Shifts []tsoutliers.ShiftRecord
	// TempChanges counts temporary-change episodes (a shift that reverts
	// within the TC window — the shape of a bounded injection).
	TempChanges int
}

// AlarmsBetween counts alarms raised in [from, to].
func (s *LatencySeries) AlarmsBetween(from, to time.Time) int {
	n := 0
	for _, a := range s.Alarms {
		if !a.Time.Before(from) && !a.Time.After(to) {
			n++
		}
	}
	return n
}

// perfHarness drives a deployment while tracking one API's latency
// through the analyzer's own detector.
type perfHarness struct {
	d        *openstack.Deployment
	analyzer *core.Analyzer
	target   trace.API
	pending  map[uint64]time.Time
	series   *LatencySeries
}

func newPerfHarness(seed int64, target trace.API, lib *fingerprint.Library, acfg core.Config) *perfHarness {
	d := openstack.NewDeployment(openstack.Config{Seed: seed, HeartbeatPeriod: 10 * time.Second})
	acfg.PerfDetection = true
	if acfg.Latency.MinRun == 0 {
		acfg.Latency = tsoutliers.Options{Warmup: 12, MinRun: 4, K: 4, MinSpread: 0.008}
	}
	h := &perfHarness{
		d:        d,
		analyzer: core.New(lib, acfg),
		target:   target,
		pending:  make(map[uint64]time.Time),
		series:   &LatencySeries{API: target},
	}
	mon := agent.NewMonitor("analyzer", h.ingest, d.GroundTruth)
	d.Fabric.Tap(mon.HandlePacket)
	return h
}

// ingest forwards every event to the analyzer and mirrors the target
// API's request/response pairing to record the latency series.
func (h *perfHarness) ingest(ev trace.Event) {
	h.analyzer.Ingest(ev)
	if ev.API != h.target {
		return
	}
	switch ev.Type {
	case trace.RESTRequest:
		h.pending[ev.ConnID] = ev.Time
	case trace.RESTResponse:
		if t0, ok := h.pending[ev.ConnID]; ok {
			delete(h.pending, ev.ConnID)
			lat := ev.Time.Sub(t0)
			adj := lat
			if det := h.analyzer.LatencyDetector(h.target); det != nil {
				adj = time.Duration(det.Adjusted(lat.Seconds()) * float64(time.Second))
			}
			h.series.Points = append(h.series.Points, LatencyPoint{Time: ev.Time, Latency: lat, Adjusted: adj})
		}
	}
}

func (h *perfHarness) finish() *LatencySeries {
	h.d.StopNoise()
	h.d.Sim.Run()
	h.analyzer.Flush()
	if det := h.analyzer.LatencyDetector(h.target); det != nil {
		h.series.Alarms = det.Alarms()
		h.series.Shifts = det.Shifts()
		h.series.TempChanges = det.TempChanges()
	}
	return h.series
}

// Fig6Result carries the Neutron latency experiment output.
type Fig6Result struct {
	Series *LatencySeries
	// SurgeAt is when the CPU surge was installed.
	SurgeAt time.Time
	// Reports are the performance-fault reports raised.
	Reports []*core.Report
}

// Fig6 reproduces §7.2.2/Fig 6: a steady stream of VM-create operations
// (400 concurrent at peak), a CPU surge on the Neutron server partway
// through, and level-shift detection on Neutron's GET /v2.0/ports.json.
func Fig6(seed int64, concurrent int) Fig6Result {
	if concurrent == 0 {
		concurrent = 400
	}
	target := trace.RESTAPI(trace.SvcNeutron, "GET", "/v2.0/ports.json")
	lib := coreLib()
	h := newPerfHarness(seed, target, lib, core.Config{})

	// Maintain roughly `concurrent` in-flight VM creates.
	stop := false
	h.d.Sim.Every(2*time.Second, func() bool { return stop }, func() {
		if h.d.Running() < concurrent {
			h.d.Start(openstack.OpVMCreate(), nil)
		}
	})
	h.d.Sim.RunUntil(h.d.Sim.Now().Add(12 * time.Minute))
	surgeAt := h.d.Sim.Now()
	neutron := h.d.Fabric.NodeFor(trace.SvcNeutron)
	faults.InjectCPUSurge(neutron, 95)
	h.d.Sim.RunUntil(h.d.Sim.Now().Add(15 * time.Minute))
	stop = true
	series := h.finish()

	var perfReports []*core.Report
	for _, rep := range h.analyzer.Reports() {
		if rep.Kind == core.Performance {
			perfReports = append(perfReports, rep)
		}
	}
	return Fig6Result{Series: series, SurgeAt: surgeAt, Reports: perfReports}
}

func coreLib() *fingerprint.Library {
	lib := fingerprint.NewLibrary()
	for _, op := range openstack.CoreOperations() {
		lib.AddAPIs(op.Name, op.Category.String(), op.APIs())
	}
	return lib
}

// Fig8bResult carries the injected-latency experiment output.
type Fig8bResult struct {
	Series *LatencySeries
	// InjectAt/RemoveAt bracket the 50 ms injection window.
	InjectAt, RemoveAt time.Time
	// AlarmsDuring counts alarms raised inside the window; AlarmsEpisode
	// additionally includes the removal transient just after it (the
	// paper reports 18 alarms for the episode).
	AlarmsDuring  int
	AlarmsEpisode int
}

// Fig8b reproduces §7.3(4)/Fig 8b: 200 concurrent Tempest operations for
// ~20 minutes, with 50 ms of injected latency on all Glance traffic
// between the 5- and 15-minute marks, watching GET /v2/images/{id}.
func Fig8b(seed int64, concurrent int) Fig8bResult {
	if concurrent == 0 {
		concurrent = 200
	}
	target := trace.RESTAPI(trace.SvcGlance, "GET", "/v2/images/{id}")
	cat := tempest.NewCatalog(seed)
	lib := GroundTruthLibrary(cat)
	// MinRun approximates the R tsoutliers confirmation lag: it alarms on
	// each outlying observation until the level shift is confirmed, which
	// in the paper produced 18 alarms across the injection window.
	h := newPerfHarness(seed, target, lib, core.Config{
		Latency: tsoutliers.Options{Warmup: 12, MinRun: 9, K: 4, MinSpread: 0.008},
	})

	// A mix of image and compute tests keeps the target API hot; ops
	// restart to sustain concurrency for the full window.
	pool := append(append([]*tempest.Test{}, cat.ByCategory[openstack.Image]...),
		cat.ByCategory[openstack.Compute][:50]...)
	idx := 0
	stop := false
	h.d.Sim.Every(time.Second, func() bool { return stop }, func() {
		for h.d.Running() < concurrent {
			h.d.Start(pool[idx%len(pool)].Op, nil)
			idx++
		}
	})

	h.d.Sim.RunUntil(h.d.Sim.Now().Add(5 * time.Minute))
	injectAt := h.d.Sim.Now()
	h.d.Fabric.InjectLatency("glance-node", 50*time.Millisecond)
	h.d.Sim.RunUntil(h.d.Sim.Now().Add(10 * time.Minute))
	removeAt := h.d.Sim.Now()
	h.d.Fabric.InjectLatency("glance-node", 0)
	h.d.Sim.RunUntil(h.d.Sim.Now().Add(5 * time.Minute))
	stop = true
	series := h.finish()

	return Fig8bResult{
		Series:        series,
		InjectAt:      injectAt,
		RemoveAt:      removeAt,
		AlarmsDuring:  series.AlarmsBetween(injectAt, removeAt),
		AlarmsEpisode: series.AlarmsBetween(injectAt, removeAt.Add(2*time.Minute)),
	}
}

// FormatLatencySeries renders a series with shift markers, downsampled
// for terminal output.
func FormatLatencySeries(s *LatencySeries, every int) string {
	if every < 1 {
		every = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "series for %v: %d points, %d alarms, %d shifts\n",
		s.API, len(s.Points), len(s.Alarms), len(s.Shifts))
	b.WriteString("t_sec  latency_ms  adjusted_ms\n")
	var t0 time.Time
	if len(s.Points) > 0 {
		t0 = s.Points[0].Time
	}
	for i, p := range s.Points {
		if i%every != 0 {
			continue
		}
		fmt.Fprintf(&b, "%5.0f  %10.1f  %11.1f\n",
			p.Time.Sub(t0).Seconds(),
			float64(p.Latency)/1e6, float64(p.Adjusted)/1e6)
	}
	for _, sh := range s.Shifts {
		fmt.Fprintf(&b, "shift at t=%.0fs: %.1fms -> %.1fms\n",
			sh.Time.Sub(t0).Seconds(), sh.From*1000, sh.To*1000)
	}
	return b.String()
}
