package experiments

import (
	"strings"
	"testing"
	"time"

	"gretel/internal/core"
	"gretel/internal/openstack"
	"gretel/internal/tempest"
	"gretel/internal/trace"
)

func TestTable1ShapeMatchesPaper(t *testing.T) {
	res := Table1(1, 2)
	if res.FPMax != 384 {
		t.Errorf("FPmax = %d, want 384", res.FPMax)
	}
	want := map[string]struct {
		tests        int
		fpWith, fpNo float64 // Table 1 targets
	}{
		"Compute": {517, 100, 56},
		"Image":   {55, 18, 15},
		"Network": {251, 31, 16},
		"Storage": {84, 17, 15},
		"Misc":    {293, 16, 11},
	}
	for _, row := range res.Rows {
		w, ok := want[row.Category]
		if !ok {
			t.Fatalf("unexpected category %q", row.Category)
		}
		if row.Tests != w.tests {
			t.Errorf("%s tests = %d, want %d", row.Category, row.Tests, w.tests)
		}
		// Within 25% of the paper's fingerprint averages.
		if row.AvgFPWith < w.fpWith*0.75 || row.AvgFPWith > w.fpWith*1.25 {
			t.Errorf("%s avg FP w/RPC = %.1f, paper %.0f", row.Category, row.AvgFPWith, w.fpWith)
		}
		if row.AvgFPNoRPC < w.fpNo*0.75 || row.AvgFPNoRPC > w.fpNo*1.3 {
			t.Errorf("%s avg FP w/o RPC = %.1f, paper %.0f", row.Category, row.AvgFPNoRPC, w.fpNo)
		}
		if row.RPCEvents == 0 || row.RESTEvents == 0 {
			t.Errorf("%s has zero event counts", row.Category)
		}
	}
	if s := FormatTable1(res); !strings.Contains(s, "Compute") || !strings.Contains(s, "FPmax") {
		t.Error("FormatTable1 output incomplete")
	}
}

func TestFig5OverlapCDF(t *testing.T) {
	cat := tempest.NewCatalog(1)
	lib := GroundTruthLibrary(cat)
	points := Fig5(lib, 70)
	if len(points) != 70 {
		t.Fatalf("sampled %d points, want 70", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].Overlap < points[i-1].Overlap {
			t.Fatal("CDF points not sorted")
		}
	}
	cdf := Fig5CDF(points, []float64{0.15})
	// Paper: ~90% of representative Compute operations have <15% overlap.
	if cdf[0.15] < 0.7 {
		t.Errorf("fraction with <15%% overlap = %.2f, paper ~0.9", cdf[0.15])
	}
	if s := FormatFig5(points); !strings.Contains(s, "overlap") {
		t.Error("FormatFig5 output incomplete")
	}
}

func TestFig7aPrecisionCell(t *testing.T) {
	cells := Fig7a(1, []int{100}, []int{4})
	if len(cells) != 1 {
		t.Fatalf("cells = %d", len(cells))
	}
	c := cells[0]
	if c.Reports != 4 {
		t.Fatalf("reports = %d, want 4", c.Reports)
	}
	// The paper's headline: precision > 98%.
	if c.AvgTheta < 0.98 {
		t.Errorf("precision = %.4f, want > 0.98", c.AvgTheta)
	}
	// The snapshot must narrow the candidate set far below the
	// API-error-only count (Fig 7b's two series).
	if c.AvgMatched >= c.AvgByErrorOnly/2 {
		t.Errorf("snapshot did not narrow: matched %.1f vs api-only %.1f",
			c.AvgMatched, c.AvgByErrorOnly)
	}
	if c.MaxReportDelay <= 0 || c.MaxReportDelay > 2*time.Minute {
		t.Errorf("report delay = %v", c.MaxReportDelay)
	}
	if s := FormatPrecision(cells); !strings.Contains(s, "precision") {
		t.Error("FormatPrecision output incomplete")
	}
}

func TestFig8aIdenticalFaults(t *testing.T) {
	cells := Fig8a(1, []int{100})
	if len(cells) != 1 || cells[0].Faults != 16 {
		t.Fatalf("cells = %+v", cells)
	}
	if cells[0].Reports < 12 {
		t.Errorf("reports = %d, want ~16", cells[0].Reports)
	}
	if cells[0].AvgTheta < 0.95 {
		t.Errorf("precision = %.4f", cells[0].AvgTheta)
	}
}

func TestFig6LatencyShift(t *testing.T) {
	res := Fig6(3, 120)
	if len(res.Series.Points) < 50 {
		t.Fatalf("series too short: %d points", len(res.Series.Points))
	}
	if len(res.Series.Shifts) == 0 {
		t.Fatal("no level shift detected despite CPU surge")
	}
	// The shift must occur after the surge and move the level upward.
	sh := res.Series.Shifts[0]
	if sh.Time.Before(res.SurgeAt) {
		t.Errorf("shift at %v before surge at %v", sh.Time, res.SurgeAt)
	}
	if sh.To <= sh.From {
		t.Errorf("shift direction wrong: %.3f -> %.3f", sh.From, sh.To)
	}
	if len(res.Reports) == 0 {
		t.Error("no performance reports raised")
	}
	if s := FormatLatencySeries(res.Series, 10); !strings.Contains(s, "shift") {
		t.Error("FormatLatencySeries output incomplete")
	}
}

func TestFig8bInjectedLatencyAlarms(t *testing.T) {
	res := Fig8b(5, 120)
	if res.AlarmsDuring == 0 {
		t.Fatal("no alarms during the injection window (paper: 18)")
	}
	// Alarms should concentrate inside the injection window; allow the
	// removal transient right after.
	after := res.Series.AlarmsBetween(res.RemoveAt.Add(30*time.Second), res.RemoveAt.Add(4*time.Minute))
	if after > res.AlarmsDuring {
		t.Errorf("more alarms after removal (%d) than during injection (%d)", after, res.AlarmsDuring)
	}
	if len(res.Series.Shifts) == 0 {
		t.Error("no level shift for the 50ms injection")
	}
}

func TestFig8cThroughputShape(t *testing.T) {
	points := Fig8c(7, 40000, []int{100, 2000}, core.Config{})
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.Result.EventsPerSec <= 0 || p.Result.Mbps <= 0 {
			t.Fatalf("no throughput measured: %+v", p)
		}
		if p.Result.Reports == 0 {
			t.Fatalf("no reports at fault rate 1/%d", p.FaultEvery)
		}
	}
	// More faults -> more snapshot work -> more reports.
	if points[0].Result.Reports <= points[1].Result.Reports {
		t.Errorf("reports: 1/100=%d should exceed 1/2000=%d",
			points[0].Result.Reports, points[1].Result.Reports)
	}
	if s := FormatFig8c(points); !strings.Contains(s, "Mbps") {
		t.Error("FormatFig8c output incomplete")
	}
}

func TestHanselComparisonShape(t *testing.T) {
	g, h := HanselComparison(9, 40000)
	if g.Reports == 0 || h.Reports == 0 {
		t.Fatalf("missing reports: gretel=%d hansel=%d", g.Reports, h.Reports)
	}
	// HANSEL's defining cost: ~30s report latency from its bucket window;
	// GRETEL reports as soon as the snapshot fills.
	if h.MaxReportDelay < 29*time.Second {
		t.Errorf("HANSEL delay = %v, want ~30s", h.MaxReportDelay)
	}
	if g.MaxReportDelay >= h.MaxReportDelay {
		t.Errorf("GRETEL delay %v not below HANSEL %v", g.MaxReportDelay, h.MaxReportDelay)
	}
	if s := FormatComparison(g, h); !strings.Contains(s, "GRETEL") || !strings.Contains(s, "HANSEL") {
		t.Error("FormatComparison output incomplete")
	}
}

func TestOverheadMeasurement(t *testing.T) {
	res := Overhead(11, 40)
	if res.Events == 0 {
		t.Fatal("no events processed")
	}
	if res.AnalyzerWall <= 0 || res.PerEvent <= 0 {
		t.Fatalf("analyzer time not measured: %+v", res)
	}
	if res.AnalyzerShare <= 0 || res.AnalyzerShare > 1 {
		t.Fatalf("analyzer share = %v", res.AnalyzerShare)
	}
	if s := FormatOverhead(res); !strings.Contains(s, "analyzer wall time") {
		t.Error("FormatOverhead output incomplete")
	}
}

func TestGroundTruthLibraryMatchesCatalog(t *testing.T) {
	cat := tempest.NewCatalog(13)
	lib := GroundTruthLibrary(cat)
	if lib.Len() != len(cat.Tests) {
		t.Fatalf("library %d vs catalog %d", lib.Len(), len(cat.Tests))
	}
	for _, cate := range openstack.Categories() {
		test := cat.ByCategory[cate][0]
		fp := lib.ByName(test.Op.Name)
		if fp == nil || fp.Len() != len(test.Op.APIs()) {
			t.Fatalf("fingerprint mismatch for %s", test.Op.Name)
		}
	}
}

func TestChooseFaultAPIPrefersUnique(t *testing.T) {
	cat := tempest.NewCatalog(17)
	for _, test := range cat.ByCategory[openstack.Compute][:50] {
		api, ok := chooseFaultAPI(test.Op)
		if !ok {
			continue
		}
		if api.Kind != trace.REST || !api.StateChanging() {
			t.Fatalf("fault API %v not a state-change REST", api)
		}
	}
}

func TestCorrelationIDExtensionImprovesPrecision(t *testing.T) {
	cat := tempest.NewCatalog(21)
	lib := GroundTruthLibrary(cat)
	mk := func(corr bool) PrecisionCell {
		run := &ParallelRun{
			Catalog: cat, Library: lib, Parallel: 100,
			FaultTests:     pickFaultTestsDeterministic(cat, 4),
			Seed:           77,
			CorrelationIDs: corr,
		}
		return run.Run()
	}
	base := mk(false)
	corr := mk(true)
	if corr.Reports != 4 || base.Reports != 4 {
		t.Fatalf("reports: base=%d corr=%d", base.Reports, corr.Reports)
	}
	// Correlation ids restrict matching to the faulty operation's own
	// messages: the matched set must shrink and the true operation must
	// always be included.
	if corr.AvgMatched > base.AvgMatched {
		t.Errorf("corr-ids did not narrow: %.1f vs %.1f", corr.AvgMatched, base.AvgMatched)
	}
	if corr.HitRate < 1.0 {
		t.Errorf("corr-id hit rate = %.2f, want 1.0", corr.HitRate)
	}
	if corr.AvgTheta < base.AvgTheta {
		t.Errorf("corr-id precision %.4f below baseline %.4f", corr.AvgTheta, base.AvgTheta)
	}
}

func TestFig8bClassifiesTemporaryChange(t *testing.T) {
	res := Fig8b(5, 120)
	if res.Series.TempChanges != 1 {
		t.Errorf("temporary changes = %d, want 1 (the bounded 10-minute injection)", res.Series.TempChanges)
	}
}

func TestHanselLinkingOverReporting(t *testing.T) {
	withT, withoutT := HanselLinking(3, 30000)
	if withoutT < 1 {
		t.Fatalf("baseline linking = %v", withoutT)
	}
	if withT <= withoutT {
		t.Errorf("shared tenant ids should over-link: %v vs %v", withT, withoutT)
	}
}
