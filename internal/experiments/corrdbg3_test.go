package experiments

import (
	"fmt"
	"testing"
	"time"

	"gretel/internal/agent"
	"gretel/internal/core"
	"gretel/internal/faults"
	"gretel/internal/fingerprint"
	"gretel/internal/openstack"
	"gretel/internal/tempest"
	"gretel/internal/trace"
)

func TestCorrDebug3(t *testing.T) {
	cat := tempest.NewCatalog(21)
	lib := GroundTruthLibrary(cat)
	ft := pickFaultTestsDeterministic(cat, 4)[3] // compute-vm-create-0003
	api, _ := chooseFaultAPI(ft.Op)
	fmt.Println("test:", ft.Op.Name, "fault api:", api)

	d := openstack.NewDeployment(openstack.Config{Seed: 77, CorrelationIDs: true,
		HeartbeatPeriod: 10 * time.Second,
		ThinkMin:        50 * time.Millisecond, ThinkMax: 150 * time.Millisecond})
	plan := faults.NewPlan()
	d.Injector = plan
	a := core.New(lib, core.Config{Prate: 1600, T: 10, UseCorrelationIDs: true})
	var all []trace.Event
	var inst *openstack.Instance
	mon := agent.NewMonitor("x", func(ev trace.Event) {
		all = append(all, ev)
		a.Ingest(ev)
	}, d.GroundTruth)
	d.Fabric.Tap(mon.HandlePacket)

	// light background
	for i := 0; i < 100; i++ {
		d.Start(cat.Tests[(i*7)%len(cat.Tests)].Op, nil)
	}
	d.Sim.After(30*time.Second, func() {
		inst = d.Start(ft.Op, nil)
		plan.Add(faults.Rule{OpID: inst.ID, API: api, StepIndex: -1, Once: true,
			Outcome: openstack.Outcome{Status: 500, ErrText: "injected"}})
	})
	d.Sim.RunUntil(d.Sim.Now().Add(3 * time.Minute))
	d.StopNoise()
	d.Sim.Run()
	a.Flush()

	fmt.Println("inst state:", inst.State, "failed api:", inst.FailedAPI, "corr:", inst.CorrID)
	for _, rep := range a.Reports() {
		if rep.TruthOp != ft.Op.Name {
			continue
		}
		fmt.Println("matched:", len(rep.Candidates), "hit:", rep.Hit(), "offending:", rep.OffendingAPI)
		// rebuild pattern: own corr events, requests, non-RPC, known
		var pat []rune
		for _, ev := range all {
			if ev.CorrID == inst.CorrID && ev.Type.Request() && ev.API.Kind != trace.RPC {
				if r, ok := lib.Table.Lookup(ev.API); ok {
					pat = append(pat, r)
				}
			}
		}
		offSym, okk := lib.Table.Lookup(rep.OffendingAPI)
		fmt.Println("offSym known:", okk, "pattern len (full run):", len(pat))
		fp := lib.ByName(ft.Op.Name)
		tr := fp.Truncate(offSym)
		if tr == nil {
			fmt.Println("TRUNCATE RETURNED NIL — offending symbol not in truth fp!")
			continue
		}
		lean := tr.WithoutRPC(lib.Table)
		idx := fingerprint.NewSnapshotIndex(pat)
		fmt.Println("lean len:", lean.Len(), "MatchCorrelated(full own pattern):", lean.MatchCorrelated(idx))
		set := lean.SymbolSet()
		covered, total := 0, 0
		uncov := map[trace.API]int{}
		for _, r := range pat {
			total++
			if set[r] {
				covered++
			} else {
				if apiX, ok := lib.Table.API(r); ok {
					uncov[apiX]++
				}
			}
		}
		fmt.Printf("coverage: %d/%d = %.2f\n", covered, total, float64(covered)/float64(total))
		for k, v := range uncov {
			fmt.Println("  uncovered:", k, "x", v)
		}
	}
}
