package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"gretel/internal/core"
	"gretel/internal/tempest"
	"gretel/internal/tracestore"
)

// ExplainResult holds one explain-mode precision run: the aggregate
// cell, the raw reports, and the evidence-trace store behind them.
type ExplainResult struct {
	Cell    PrecisionCell
	Reports []*core.Report
	Store   *tracestore.Store
}

// Explain reruns the Fig. 8a scenario shape — identical concurrent
// faulty operations against background parallelism — with evidence
// tracing on, so every injected fault's localization decision can be
// reconstructed: which operation was blamed, which fingerprint won, and
// why the runners-up were rejected.
func Explain(seed int64, parallel, faults int) ExplainResult {
	c := tempest.NewCatalog(seed)
	lib := GroundTruthLibrary(c)
	rng := rand.New(rand.NewSource(seed ^ 0x8a))
	one := pickFaultTests(c, 1, rng)[0]
	faultTests := make([]*tempest.Test, faults)
	for i := range faultTests {
		faultTests[i] = one
	}
	res := ExplainResult{Store: tracestore.New(0)}
	run := &ParallelRun{
		Catalog: c, Library: lib, Parallel: parallel,
		FaultTests: faultTests,
		Seed:       seed ^ int64(parallel)*31,
		TraceStore: res.Store,
	}
	res.Cell = run.runCollect(&res.Reports)
	return res
}

// FormatExplain renders one line block per fault report: the blamed
// operation (and whether it is the ground truth), the winning
// fingerprint's match, and the highest-scoring rejected candidate with
// its concrete rejection reason.
func FormatExplain(res ExplainResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d injected faults, %d reports, %d evidence traces (%d evicted)\n\n",
		res.Cell.Faults, len(res.Reports), res.Store.Stored(), res.Store.Evicted())
	for _, rep := range res.Reports {
		tr := res.Store.Get(rep.TraceID)
		fmt.Fprintf(&b, "trace %-4d %s fault at %v\n", rep.TraceID, rep.Kind, rep.OffendingAPI)
		if tr == nil {
			fmt.Fprintf(&b, "  (trace evicted from store)\n\n")
			continue
		}
		verdict := "MISS"
		if rep.Hit() {
			verdict = "hit"
		}
		fmt.Fprintf(&b, "  blamed: %d candidate(s) at beta=%d precision=%.2f%% — ground truth %s (%s)\n",
			len(rep.Candidates), rep.Beta, rep.Precision*100, rep.TruthOp, verdict)
		if win := winningCandidate(tr, rep.TruthOp); win != nil {
			fmt.Fprintf(&b, "  winning fingerprint: %s (len %d, %d/%d mandatory symbols, %d omitted)\n",
				win.Name, win.FPLen, win.MandatoryHit, win.MandatoryTotal, win.Omitted)
		} else {
			fmt.Fprintf(&b, "  winning fingerprint: none matched\n")
		}
		if ru := runnerUp(tr); ru != nil {
			fmt.Fprintf(&b, "  runner-up: %s (score %.2f) rejected: %s\n", ru.Name, ru.Score, ru.Reason)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// winningCandidate picks the matched candidate to headline: the ground
// truth when it matched, else the first match in candidate order.
func winningCandidate(tr *tracestore.Trace, truthOp string) *tracestore.Candidate {
	var first *tracestore.Candidate
	for i := range tr.Candidates {
		c := &tr.Candidates[i]
		if !c.Matched {
			continue
		}
		if c.Name == truthOp {
			return c
		}
		if first == nil {
			first = c
		}
	}
	return first
}

// runnerUp picks the closest rejected candidate — highest score, name
// as tiebreak so the output is deterministic.
func runnerUp(tr *tracestore.Trace) *tracestore.Candidate {
	var rejected []*tracestore.Candidate
	for i := range tr.Candidates {
		if c := &tr.Candidates[i]; !c.Matched && c.Reason != "" {
			rejected = append(rejected, c)
		}
	}
	if len(rejected) == 0 {
		return nil
	}
	sort.Slice(rejected, func(i, j int) bool {
		if rejected[i].Score != rejected[j].Score {
			return rejected[i].Score > rejected[j].Score
		}
		return rejected[i].Name < rejected[j].Name
	})
	return rejected[0]
}
