// Offline reanalysis: re-run Algorithm 2 over a write-ahead log a live
// analyzer captured with `gretel -wal DIR`. The WAL holds the raw
// event stream, so an incident can be re-localized after the fact —
// against a different fingerprint library, a different window sizing,
// or just to reproduce a report under a debugger — without the
// production deployment in the loop.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"gretel/internal/core"
	"gretel/internal/replay"
	"gretel/internal/tempest"
)

// ReanalyzeResult is one offline pass over a captured WAL: the replay
// accounting (with the recovery scan's quarantine bookkeeping) and
// every report the rebuilt analyzer produced.
type ReanalyzeResult struct {
	Res     replay.WALResult
	Reports []*core.Report
}

// Reanalyze replays the WAL at dir through a fresh analyzer built from
// the seed catalog's ground-truth fingerprints, feeding only records
// with sequence in [from, to] (0 = open bound). The analyzer is closed
// before returning, so in-flight windows are flushed and the report
// list is complete.
func Reanalyze(seed int64, dir string, from, to uint64, cfg core.Config) (ReanalyzeResult, error) {
	lib := GroundTruthLibrary(tempest.NewCatalog(seed))
	a := core.New(lib, cfg)
	var out ReanalyzeResult
	a.OnReport(func(r *core.Report) { out.Reports = append(out.Reports, r) })
	res, err := replay.DriveWAL(a, dir, replay.WALDrive{From: from, To: to})
	if err != nil {
		return out, err
	}
	a.Close()
	res.Reports = len(out.Reports)
	out.Res = res
	return out, nil
}

// FormatReanalyze renders the pass the way the other experiments print
// their tables: recovery accounting first (what the log actually held),
// then one line per report.
func FormatReanalyze(r ReanalyzeResult) string {
	var b strings.Builder
	rec := r.Res.Recovery
	fmt.Fprintf(&b, "wal: %d segments, records %d..%d: %d recovered, %d quarantined, %d duplicates, %d bytes skipped",
		rec.Segments, rec.FirstSeq, rec.LastSeq, rec.Records, rec.Quarantined, rec.Duplicates, rec.BytesSkipped)
	if rec.TornTail {
		b.WriteString(" (torn tail)")
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "replayed %d events (%.0f/s) -> %d reports\n",
		r.Res.Events, r.Res.EventsPerSec, len(r.Reports))
	for _, rep := range r.Reports {
		fmt.Fprintf(&b, "  [%s] %s fault: %v (%d candidates, precision %.2f%%)\n",
			rep.DetectedAt.Format(time.TimeOnly), rep.Kind, rep.OffendingAPI,
			len(rep.Candidates), rep.Precision*100)
	}
	return b.String()
}
