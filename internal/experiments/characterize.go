// Package experiments reproduces every table and figure of the paper's
// evaluation (§7) on the simulated deployment: Table 1 and Fig 5
// (characterization), Fig 6/8b (performance faults), Fig 7a-c and 8a
// (precision), Fig 8c and the HANSEL comparison (throughput), and the
// §7.4.2 overhead measurement. The cmd/gretel-experiments binary and the
// repository benchmarks call these drivers.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"gretel/internal/fingerprint"
	"gretel/internal/openstack"
	"gretel/internal/tempest"
)

// Table1Row is one row of Table 1.
type Table1Row struct {
	Category   string
	Tests      int
	UniqueRPC  int
	UniqueREST int
	RPCEvents  uint64
	RESTEvents uint64
	AvgFPWith  float64
	AvgFPNoRPC float64
}

// Table1Result bundles the characterization output.
type Table1Result struct {
	Rows    []Table1Row
	Library *fingerprint.Library
	FPMax   int
}

// GroundTruthLibrary builds the fingerprint library directly from the
// catalog's ground-truth API sequences. The tempest tests verify that
// offline learning (Algorithm 1 over isolated executions) recovers
// exactly these sequences; experiments that only need the library use
// this much faster construction.
func GroundTruthLibrary(c *tempest.Catalog) *fingerprint.Library {
	lib := fingerprint.NewLibrary()
	for _, test := range c.Tests {
		lib.AddAPIs(test.Op.Name, test.Op.Category.String(), test.Op.APIs())
	}
	return lib
}

// Table1 runs the full characterization: every catalog test executed in
// isolation (runsPerTest times), fingerprints learned with Algorithm 1,
// and the Table 1 statistics aggregated.
func Table1(seed int64, runsPerTest int) Table1Result {
	cat := tempest.NewCatalog(seed)
	lib, stats := tempest.LearnLibrary(cat, runsPerTest, seed^0x7ab1e)

	byCat := map[string]fingerprint.Stats{}
	for _, st := range lib.StatsByCategory() {
		byCat[st.Category] = st
	}
	var rows []Table1Row
	for _, c := range openstack.Categories() {
		st := byCat[c.String()]
		rs := stats[c]
		rows = append(rows, Table1Row{
			Category:   c.String(),
			Tests:      st.Count,
			UniqueRPC:  st.UniqueRPC,
			UniqueREST: st.UniqueREST,
			RPCEvents:  rs.RPCEvents,
			RESTEvents: rs.RESTEvents,
			AvgFPWith:  st.AvgLenWith,
			AvgFPNoRPC: st.AvgLenNoRPC,
		})
	}
	return Table1Result{Rows: rows, Library: lib, FPMax: lib.MaxLen()}
}

// FormatTable1 renders the rows like the paper's Table 1.
func FormatTable1(res Table1Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-9s %6s %8s %9s %9s %10s %9s %9s\n",
		"Category", "Tests", "uRPC", "uREST", "RPCev", "RESTev", "FP w/", "FP w/o")
	var totRPC, totREST uint64
	for _, r := range res.Rows {
		fmt.Fprintf(&b, "%-9s %6d %8d %9d %8.1fK %9.1fK %9.0f %9.0f\n",
			r.Category, r.Tests, r.UniqueRPC, r.UniqueREST,
			float64(r.RPCEvents)/1000, float64(r.RESTEvents)/1000,
			r.AvgFPWith, r.AvgFPNoRPC)
		totRPC += r.RPCEvents
		totREST += r.RESTEvents
	}
	fmt.Fprintf(&b, "%-9s %6d %8s %9s %8.1fK %9.1fK\n", "Total", 1200, "-", "-",
		float64(totRPC)/1000, float64(totREST)/1000)
	fmt.Fprintf(&b, "FPmax = %d (paper: 384)\n", res.FPMax)
	return b.String()
}

// Fig5Point is one CDF point: a Compute operation's maximum symbol-set
// overlap with any operation of another category.
type Fig5Point struct {
	Name    string
	Overlap float64
}

// Fig5 computes the overlap CDF for representative Compute operations
// (the paper plots 70).
func Fig5(lib *fingerprint.Library, sample int) []Fig5Point {
	var compute, others []*fingerprint.Fingerprint
	for _, fp := range lib.All() {
		if fp.Category == "Compute" {
			compute = append(compute, fp)
		} else {
			others = append(others, fp)
		}
	}
	if sample > 0 && len(compute) > sample {
		// Deterministic spread across the category.
		stride := len(compute) / sample
		picked := make([]*fingerprint.Fingerprint, 0, sample)
		for i := 0; i < sample; i++ {
			picked = append(picked, compute[i*stride])
		}
		compute = picked
	}
	out := make([]Fig5Point, 0, len(compute))
	for _, f := range compute {
		maxOv := 0.0
		for _, g := range others {
			if ov := fingerprint.Overlap(f, g); ov > maxOv {
				maxOv = ov
			}
		}
		out = append(out, Fig5Point{Name: f.Name, Overlap: maxOv})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Overlap < out[j].Overlap })
	return out
}

// Fig5CDF summarizes the CDF: the fraction of sampled operations with
// overlap below each threshold.
func Fig5CDF(points []Fig5Point, thresholds []float64) map[float64]float64 {
	out := make(map[float64]float64, len(thresholds))
	for _, th := range thresholds {
		n := 0
		for _, p := range points {
			if p.Overlap < th {
				n++
			}
		}
		out[th] = float64(n) / float64(len(points))
	}
	return out
}

// FormatFig5 renders the CDF series.
func FormatFig5(points []Fig5Point) string {
	var b strings.Builder
	b.WriteString("overlap_pct  cdf\n")
	for i, p := range points {
		fmt.Fprintf(&b, "%10.1f  %5.3f\n", p.Overlap*100, float64(i+1)/float64(len(points)))
	}
	cdf := Fig5CDF(points, []float64{0.15})
	fmt.Fprintf(&b, "fraction with <15%% overlap: %.0f%% (paper: ~90%%)\n", cdf[0.15]*100)
	return b.String()
}
