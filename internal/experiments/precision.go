package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"gretel/internal/agent"
	"gretel/internal/core"
	"gretel/internal/faults"
	"gretel/internal/fingerprint"
	"gretel/internal/openstack"
	"gretel/internal/tempest"
	"gretel/internal/trace"
	"gretel/internal/tracestore"
)

// PrecisionCell aggregates one parallel-workload run.
type PrecisionCell struct {
	Parallel int
	Faults   int
	Reports  int
	// AvgTheta is the mean precision θ = (N-n)/(N-1) over reports.
	AvgTheta float64
	// AvgMatched is the mean candidate-set size n after snapshot matching.
	AvgMatched float64
	// AvgByErrorOnly is the mean count of operations containing the error
	// API (no snapshot) — Fig 7b/7c's "With API error" series.
	AvgByErrorOnly float64
	// HitRate is the fraction of reports whose candidate set contains the
	// ground-truth operation.
	HitRate float64
	// AvgBeta is the mean final context-buffer size.
	AvgBeta float64
	// MaxReportDelay is the worst fault-to-report virtual latency (§7.4.1:
	// the paper saw <2 s at 400 concurrent operations).
	MaxReportDelay time.Duration
}

// chooseFaultAPI picks the API to fail inside an operation: a
// state-change REST step past the midpoint (the paper injected erroneous
// REST APIs from the Compute and Network categories). APIs occurring
// exactly once in the operation are preferred so the failure point
// coincides with the fingerprint-truncation point (which cuts at the
// API's last occurrence).
func chooseFaultAPI(op *openstack.Operation) (trace.API, bool) {
	counts := map[trace.API]int{}
	for _, s := range op.Steps {
		if !s.Noise {
			counts[s.API]++
		}
	}
	var idxs, uniqueIdxs []int
	for i, s := range op.Steps {
		if !s.Noise && s.API.Kind == trace.REST && s.API.StateChanging() {
			idxs = append(idxs, i)
			if counts[s.API] == 1 {
				uniqueIdxs = append(uniqueIdxs, i)
			}
		}
	}
	if len(uniqueIdxs) > 0 {
		idxs = uniqueIdxs
	}
	if len(idxs) == 0 {
		return trace.API{}, false
	}
	return op.Steps[idxs[len(idxs)*3/5]].API, true
}

// ParallelRun describes one precision experiment.
type ParallelRun struct {
	Catalog *tempest.Catalog
	Library *fingerprint.Library
	// Parallel is the number of concurrent non-faulty tests.
	Parallel int
	// FaultTests are the catalog tests to run with an injected fault. A
	// test may repeat (Fig 8a runs 16 instances of the same operation).
	FaultTests []*tempest.Test
	Analyzer   core.Config
	Seed       int64
	// CorrelationIDs enables the §5.3.1 correlation-identifier extension
	// on both the deployment (request-id stamping) and the analyzer
	// (corr-id-filtered matching).
	CorrelationIDs bool
	// CaptureEvents, when non-nil, receives every ingested event (debug).
	CaptureEvents *[]trace.Event
	// TraceStore, when non-nil, turns on explain mode: every report's
	// evidence trace is recorded into it.
	TraceStore *tracestore.Store
	// T is the α time horizon in seconds. Per §5.3.1, "a bigger value of
	// t ensures that the sliding window is big enough to determine the
	// largest operation": it must cover a typical operation's duration.
	// Zero selects a default matched to the workload pacing below.
	T float64
}

// Run executes the parallel workload and aggregates the precision cell.
func (pr *ParallelRun) Run() PrecisionCell { return pr.runCollect(nil) }

func (pr *ParallelRun) runCollect(reportsOut *[]*core.Report) PrecisionCell {
	rng := rand.New(rand.NewSource(pr.Seed))
	// Tests pace like Tempest's: steps separated by fractions of a
	// second, so a typical operation completes in seconds and its
	// fingerprint fits inside the sliding window.
	d := openstack.NewDeployment(openstack.Config{
		Seed:            pr.Seed,
		HeartbeatPeriod: 10 * time.Second,
		ThinkMin:        50 * time.Millisecond,
		ThinkMax:        150 * time.Millisecond,
		CorrelationIDs:  pr.CorrelationIDs,
	})
	pr.Analyzer.UseCorrelationIDs = pr.CorrelationIDs
	if pr.Analyzer.Alpha == 0 {
		// α = 2·max(FPmax, Prate·t). The paper fixes α (768) across all
		// parallelism levels; here Prate·t is anchored to the 100-test
		// baseline (each op emits ~16 messages/s at this pacing), so α
		// stays constant as parallelism grows, exactly as in §7.
		t := pr.T
		if t == 0 {
			t = 10
		}
		pr.Analyzer.Prate = 100 * 16
		pr.Analyzer.T = t
	}
	plan := faults.NewPlan()
	d.Injector = plan

	analyzer := core.New(pr.Library, pr.Analyzer)
	analyzer.SetExplain(pr.TraceStore)
	sink := analyzer.Ingest
	if pr.CaptureEvents != nil {
		sink = func(ev trace.Event) {
			*pr.CaptureEvents = append(*pr.CaptureEvents, ev)
			analyzer.Ingest(ev)
		}
	}
	mon := agent.NewMonitor("analyzer", sink, d.GroundTruth)
	d.Fabric.Tap(mon.HandlePacket)

	// Sustain `Parallel` concurrently executing tests.
	stopPool := tempest.SustainPool(d, pr.Catalog, pr.Parallel, rng)

	// Reach steady state, then stagger the faulty instances through the
	// middle of the run so each has full past and future context.
	warmup := 60 * time.Second
	spacing := 15 * time.Second
	for i, test := range pr.FaultTests {
		test := test
		api, ok := chooseFaultAPI(test.Op)
		if !ok {
			continue
		}
		d.Sim.After(warmup+time.Duration(i)*spacing, func() {
			inst := d.Start(test.Op, nil)
			plan.Add(faults.Rule{
				OpID: inst.ID, API: api, StepIndex: -1, Once: true,
				Outcome: openstack.Outcome{Status: 500,
					ErrText: "Internal Server Error: injected fault in " + test.Op.Name},
			})
		})
	}

	// Run long enough for every fault's snapshot to fill, then drain.
	tail := 2 * time.Minute
	d.Sim.RunUntil(d.Sim.Now().Add(warmup + time.Duration(len(pr.FaultTests))*spacing + tail))
	stopPool()
	d.Sim.RunUntil(d.Sim.Now().Add(time.Minute))
	d.StopNoise()
	d.Sim.Run()
	analyzer.Flush()

	if reportsOut != nil {
		*reportsOut = analyzer.Reports()
	}
	return summarize(analyzer, pr.Parallel, len(pr.FaultTests))
}

// runWithReports is a test helper: run and also expose raw reports.
func runWithReports(pr *ParallelRun, out *[]*core.Report) PrecisionCell {
	pr2 := *pr
	cell := pr2.runCollect(out)
	return cell
}

func summarize(a *core.Analyzer, parallel, faultCount int) PrecisionCell {
	cell := PrecisionCell{Parallel: parallel, Faults: faultCount}
	reps := a.Reports()
	cell.Reports = len(reps)
	if len(reps) == 0 {
		return cell
	}
	var theta, matched, byErr, beta float64
	hits := 0
	for _, rep := range reps {
		theta += rep.Precision
		matched += float64(len(rep.Candidates))
		byErr += float64(rep.CandidatesByErrorOnly)
		beta += float64(rep.Beta)
		if rep.Hit() {
			hits++
		}
		if rep.ReportDelay > cell.MaxReportDelay {
			cell.MaxReportDelay = rep.ReportDelay
		}
	}
	n := float64(len(reps))
	cell.AvgTheta = theta / n
	cell.AvgMatched = matched / n
	cell.AvgByErrorOnly = byErr / n
	cell.HitRate = float64(hits) / n
	cell.AvgBeta = beta / n
	return cell
}

// pickFaultTests selects fault candidates from the Compute and Network
// categories (over 80% of REST invocations in the suite, §7.3).
func pickFaultTests(c *tempest.Catalog, n int, rng *rand.Rand) []*tempest.Test {
	pool := append(append([]*tempest.Test{}, c.ByCategory[openstack.Compute]...),
		c.ByCategory[openstack.Network]...)
	out := make([]*tempest.Test, 0, n)
	for len(out) < n {
		t := pool[rng.Intn(len(pool))]
		if _, ok := chooseFaultAPI(t.Op); ok {
			out = append(out, t)
		}
	}
	return out
}

// pickFaultTestsDeterministic selects the first n fault-capable Compute
// tests (for tests that need stable inputs).
func pickFaultTestsDeterministic(c *tempest.Catalog, n int) []*tempest.Test {
	out := make([]*tempest.Test, 0, n)
	for _, t := range c.ByCategory[openstack.Compute] {
		if _, ok := chooseFaultAPI(t.Op); ok {
			out = append(out, t)
			if len(out) == n {
				break
			}
		}
	}
	return out
}

// Fig7a sweeps parallelism × injected-fault count and reports precision.
func Fig7a(seed int64, parallels, faultCounts []int) []PrecisionCell {
	c := tempest.NewCatalog(seed)
	lib := GroundTruthLibrary(c)
	var out []PrecisionCell
	for _, p := range parallels {
		for _, f := range faultCounts {
			rng := rand.New(rand.NewSource(seed ^ int64(p*1000+f)))
			run := &ParallelRun{
				Catalog: c, Library: lib, Parallel: p,
				FaultTests: pickFaultTests(c, f, rng),
				Seed:       seed ^ int64(p*7+f*13),
			}
			out = append(out, run.Run())
		}
	}
	return out
}

// Fig7c compares matching with and without RPC symbols in fingerprints
// (100 concurrent tests, 8 faults).
func Fig7c(seed int64) (withRPC, withoutRPC PrecisionCell) {
	c := tempest.NewCatalog(seed)
	lib := GroundTruthLibrary(c)
	rng := rand.New(rand.NewSource(seed ^ 42))
	faultTests := pickFaultTests(c, 8, rng)

	mk := func(disablePrune bool) PrecisionCell {
		run := &ParallelRun{
			Catalog: c, Library: lib, Parallel: 100,
			FaultTests: faultTests,
			Analyzer:   core.Config{DisablePruneRPC: disablePrune},
			Seed:       seed ^ 0xf17c,
		}
		return run.Run()
	}
	// "With RPC" keeps RPC symbols in the match (pruning disabled).
	return mk(true), mk(false)
}

// Fig8a runs 16 identical concurrent faulty operations against growing
// background concurrency and reports the average matched-operation count.
func Fig8a(seed int64, parallels []int) []PrecisionCell {
	c := tempest.NewCatalog(seed)
	lib := GroundTruthLibrary(c)
	rng := rand.New(rand.NewSource(seed ^ 0x8a))
	// One Compute test with a usable fault point, repeated 16 times.
	one := pickFaultTests(c, 1, rng)[0]
	faultTests := make([]*tempest.Test, 16)
	for i := range faultTests {
		faultTests[i] = one
	}
	var out []PrecisionCell
	for _, p := range parallels {
		run := &ParallelRun{
			Catalog: c, Library: lib, Parallel: p,
			FaultTests: faultTests,
			Seed:       seed ^ int64(p)*31,
		}
		out = append(out, run.Run())
	}
	return out
}

// FormatPrecision renders precision cells as a table.
func FormatPrecision(cells []PrecisionCell) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s %7s %8s %10s %9s %11s %8s %9s %12s\n",
		"parallel", "faults", "reports", "precision", "matched", "api-only", "hit", "beta", "max-delay")
	for _, c := range cells {
		fmt.Fprintf(&b, "%8d %7d %8d %9.2f%% %9.2f %11.2f %7.0f%% %9.0f %12s\n",
			c.Parallel, c.Faults, c.Reports, c.AvgTheta*100, c.AvgMatched,
			c.AvgByErrorOnly, c.HitRate*100, c.AvgBeta, c.MaxReportDelay.Round(time.Millisecond))
	}
	return b.String()
}
