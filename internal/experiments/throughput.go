package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"gretel/internal/agent"
	"gretel/internal/core"
	"gretel/internal/hansel"
	"gretel/internal/openstack"
	"gretel/internal/replay"
	"gretel/internal/tempest"
	"gretel/internal/trace"
)

// ThroughputPoint is one Fig 8c sample.
type ThroughputPoint struct {
	FaultEvery int
	Result     replay.Result
}

// Fig8c measures the analyzer's sustained throughput for fault
// frequencies of 1 per {100, 500, 1000, 1500, 2000} messages (the paper's
// sweep), replaying a synthesized concurrent-operation stream at full
// speed. cfg configures the analyzer per point (detection worker pool,
// sharded ingest front-end); the zero Config is the classic inline
// path.
func Fig8c(seed int64, events int, faultFreqs []int, cfg core.Config) []ThroughputPoint {
	if events == 0 {
		events = 200000
	}
	if len(faultFreqs) == 0 {
		faultFreqs = []int{100, 500, 1000, 1500, 2000}
	}
	cat := tempest.NewCatalog(seed)
	lib := GroundTruthLibrary(cat)
	ops := make([]*openstack.Operation, 0, 200)
	for i, t := range cat.Tests {
		if i%6 == 0 {
			ops = append(ops, t.Op)
		}
	}

	var out []ThroughputPoint
	for _, fe := range faultFreqs {
		stream := replay.Synthesize(replay.StreamConfig{
			Ops: ops, Concurrency: 400, Events: events,
			FaultEvery: fe, PPS: 50000, Seed: seed ^ int64(fe),
		})
		a := core.New(lib, cfg)
		out = append(out, ThroughputPoint{FaultEvery: fe, Result: replay.Drive(a, stream)})
	}
	return out
}

// FormatFig8c renders the throughput sweep.
func FormatFig8c(points []ThroughputPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%11s %10s %12s %9s %8s %12s\n",
		"fault_every", "events", "events/sec", "Mbps", "reports", "max-delay")
	for _, p := range points {
		r := p.Result
		fmt.Fprintf(&b, "%11d %10d %12.0f %9.1f %8d %12s\n",
			p.FaultEvery, r.Events, r.EventsPerSec, r.Mbps, r.Reports,
			r.MaxReportDelay.Round(time.Millisecond))
	}
	return b.String()
}

// HanselComparison runs the same stream through GRETEL and the HANSEL
// baseline (§7.4.1: HANSEL peaks at 1.6K msgs/s with ~30 s report
// latency; GRETEL reports in <2 s).
func HanselComparison(seed int64, events int) (gretel, baseline replay.Result) {
	if events == 0 {
		events = 100000
	}
	cat := tempest.NewCatalog(seed)
	lib := GroundTruthLibrary(cat)
	ops := make([]*openstack.Operation, 0, 100)
	for i, t := range cat.Tests {
		if i%12 == 0 {
			ops = append(ops, t.Op)
		}
	}
	stream := replay.Synthesize(replay.StreamConfig{
		Ops: ops, Concurrency: 400, Events: events, FaultEvery: 1000,
		PPS: 50000, Seed: seed ^ 0xba5e,
	})

	a := core.New(lib, core.Config{})
	gretel = replay.Drive(a, stream)
	s := hansel.New(hansel.Config{})
	baseline = replay.DriveHansel(s, stream)
	return gretel, baseline
}

// FormatComparison renders the GRETEL vs HANSEL summary.
func FormatComparison(gretel, baseline replay.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s %12s %9s %8s %14s\n", "system", "events/sec", "Mbps", "reports", "report-latency")
	fmt.Fprintf(&b, "%8s %12.0f %9.1f %8d %14s\n", "GRETEL",
		gretel.EventsPerSec, gretel.Mbps, gretel.Reports, gretel.MaxReportDelay.Round(time.Millisecond))
	fmt.Fprintf(&b, "%8s %12.0f %9.1f %8d %14s\n", "HANSEL",
		baseline.EventsPerSec, baseline.Mbps, baseline.Reports, baseline.MaxReportDelay.Round(time.Millisecond))
	return b.String()
}

// OverheadResult is the §7.4.2 substitute measurement: since the analyzer
// here is a library call rather than a separate daemon, CPU is reported
// as analyzer wall-clock per event and memory as heap growth across the
// run.
type OverheadResult struct {
	Tests         int
	Events        uint64
	AnalyzerWall  time.Duration
	PerEvent      time.Duration
	HeapGrowthMB  float64
	PeakHeapMB    float64
	SimulatedSpan time.Duration
	AnalyzerShare float64 // analyzer wall / total wall
	TotalWall     time.Duration
}

// Overhead runs 100 parallel catalog tests through the full stack and
// measures analyzer cost.
func Overhead(seed int64, parallel int) OverheadResult {
	if parallel == 0 {
		parallel = 100
	}
	cat := tempest.NewCatalog(seed)
	lib := GroundTruthLibrary(cat)

	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)

	runSeed := seed ^ 0x0bead
	d := openstack.NewDeployment(openstack.Config{Seed: runSeed, HeartbeatPeriod: 10 * time.Second})
	analyzer := core.New(lib, core.Config{})
	var analyzerWall time.Duration
	mon := agent.NewMonitor("analyzer", func(ev trace.Event) {
		t0 := time.Now()
		analyzer.Ingest(ev)
		analyzerWall += time.Since(t0)
	}, d.GroundTruth)
	d.Fabric.Tap(mon.HandlePacket)

	startWall := time.Now()
	startSim := d.Sim.Now()
	rng := rand.New(rand.NewSource(runSeed))
	for i := 0; i < parallel; i++ {
		d.Start(cat.Tests[rng.Intn(len(cat.Tests))].Op, nil)
	}
	d.Sim.RunUntil(d.Sim.Now().Add(2 * time.Hour))
	d.StopNoise()
	d.Sim.Run()
	analyzer.Flush()
	totalWall := time.Since(startWall)

	runtime.ReadMemStats(&ms1)
	res := OverheadResult{
		Tests:         parallel,
		Events:        analyzer.Stats.Events,
		AnalyzerWall:  analyzerWall,
		SimulatedSpan: d.Sim.Now().Sub(startSim),
		TotalWall:     totalWall,
		HeapGrowthMB:  float64(int64(ms1.HeapAlloc)-int64(ms0.HeapAlloc)) / 1e6,
		PeakHeapMB:    float64(ms1.HeapSys) / 1e6,
	}
	if analyzer.Stats.Events > 0 {
		res.PerEvent = analyzerWall / time.Duration(analyzer.Stats.Events)
	}
	if totalWall > 0 {
		res.AnalyzerShare = float64(analyzerWall) / float64(totalWall)
	}
	return res
}

// FormatOverhead renders the overhead measurement.
func FormatOverhead(r OverheadResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "parallel tests:        %d\n", r.Tests)
	fmt.Fprintf(&b, "events processed:      %d over %s simulated\n", r.Events, r.SimulatedSpan.Round(time.Second))
	fmt.Fprintf(&b, "analyzer wall time:    %s (%.2f%% of run, %s/event)\n",
		r.AnalyzerWall.Round(time.Millisecond), r.AnalyzerShare*100, r.PerEvent.Round(time.Nanosecond))
	fmt.Fprintf(&b, "heap growth:           %.1f MB (heap sys %.1f MB)\n", r.HeapGrowthMB, r.PeakHeapMB)
	return b.String()
}

// HanselLinking quantifies §9.2 item 5 ("common identifiers, like tenant
// ID, may cause a faulty operation to link with several successful
// operations"): the same fault stream stitched with and without a shared
// tenant-id space, reporting the average number of operations HANSEL's
// fault chains implicate. GRETEL reports one candidate set per fault; a
// HANSEL chain that links dozens of healthy operations buries the signal.
func HanselLinking(seed int64, events int) (withTenants, withoutTenants float64) {
	if events == 0 {
		events = 60000
	}
	stream := replay.Synthesize(replay.StreamConfig{
		Concurrency: 200, Events: events, FaultEvery: 2000, PPS: 50000, Seed: seed ^ 0x7e4a,
	})
	avg := func(buckets int) float64 {
		s := hansel.New(hansel.Config{TenantBuckets: buckets})
		replay.DriveHansel(s, stream)
		reps := s.Reports()
		if len(reps) == 0 {
			return 0
		}
		total := 0
		for _, rep := range reps {
			total += rep.OperationsLinked()
		}
		return float64(total) / float64(len(reps))
	}
	return avg(8), avg(0)
}
