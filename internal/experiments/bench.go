// Canonical benchmark workloads. The repository's go-test benchmarks
// (bench_test.go) and the scenario bench harness
// (internal/benchrunner) both build their streams and libraries here,
// so the two measurement paths exercise identical inputs by
// construction — `go test -bench` and `gretel-bench` cannot drift.
package experiments

import (
	"gretel/internal/fingerprint"
	"gretel/internal/openstack"
	"gretel/internal/replay"
	"gretel/internal/tempest"
	"gretel/internal/trace"
)

// BenchLibrary is the canonical fingerprint library for throughput
// benchmarks: the seed-1 catalog's ground-truth fingerprints.
func BenchLibrary() *fingerprint.Library {
	return GroundTruthLibrary(tempest.NewCatalog(1))
}

// BenchOps is the canonical throughput operation mix: every 6th test of
// the seed-1 catalog (~200 operations across all service categories).
func BenchOps() []*openstack.Operation {
	cat := tempest.NewCatalog(1)
	ops := make([]*openstack.Operation, 0, 200)
	for i, t := range cat.Tests {
		if i%6 == 0 {
			ops = append(ops, t.Op)
		}
	}
	return ops
}

// FaultyBenchStream is the canonical Fig 8c-shaped stream: the BenchOps
// mix at concurrency 400 with one injected fault per 1000 messages,
// seed 7. Both BenchmarkFig8c_* and the harness's fig8c-parallel and
// explain-overhead scenarios replay exactly this.
func FaultyBenchStream(events int) []trace.Event {
	return replay.Synthesize(replay.StreamConfig{
		Ops: BenchOps(), Concurrency: 400, Events: events, FaultEvery: 1000, Seed: 7,
	})
}

// CleanBenchStream is the canonical fault-free ingest stream: the
// default core-operation mix at concurrency 200, seed 5 — pairing and
// per-API latency accounting are the whole cost. BenchmarkAnalyzerIngest,
// BenchmarkIngestSharded, BenchmarkIngestExplainOff, and the harness's
// ingest scenario replay exactly this.
func CleanBenchStream(events int) []trace.Event {
	return replay.Synthesize(replay.StreamConfig{Concurrency: 200, Events: events, Seed: 5})
}
