// Canonical benchmark workloads. The repository's go-test benchmarks
// (bench_test.go) and the scenario bench harness
// (internal/benchrunner) both build their streams and libraries here,
// so the two measurement paths exercise identical inputs by
// construction — `go test -bench` and `gretel-bench` cannot drift.
package experiments

import (
	"gretel/internal/fingerprint"
	"gretel/internal/openstack"
	"gretel/internal/replay"
	"gretel/internal/tempest"
	"gretel/internal/trace"
)

// BenchLibrary is the canonical fingerprint library for throughput
// benchmarks: the seed-1 catalog's ground-truth fingerprints.
func BenchLibrary() *fingerprint.Library {
	return GroundTruthLibrary(tempest.NewCatalog(1))
}

// BenchOps is the canonical throughput operation mix: every 6th test of
// the seed-1 catalog (~200 operations across all service categories).
func BenchOps() []*openstack.Operation {
	cat := tempest.NewCatalog(1)
	ops := make([]*openstack.Operation, 0, 200)
	for i, t := range cat.Tests {
		if i%6 == 0 {
			ops = append(ops, t.Op)
		}
	}
	return ops
}

// FaultyBenchStream is the canonical Fig 8c-shaped stream: the BenchOps
// mix at concurrency 400 with one injected fault per 1000 messages,
// seed 7. Both BenchmarkFig8c_* and the harness's fig8c-parallel and
// explain-overhead scenarios replay exactly this.
func FaultyBenchStream(events int) []trace.Event {
	return replay.Synthesize(replay.StreamConfig{
		Ops: BenchOps(), Concurrency: 400, Events: events, FaultEvery: 1000, Seed: 7,
	})
}

// CleanBenchStream is the canonical fault-free ingest stream: the
// default core-operation mix at concurrency 200, seed 5 — pairing and
// per-API latency accounting are the whole cost. BenchmarkAnalyzerIngest,
// BenchmarkIngestSharded, BenchmarkIngestExplainOff, and the harness's
// ingest scenario replay exactly this.
func CleanBenchStream(events int) []trace.Event {
	return replay.Synthesize(replay.StreamConfig{Concurrency: 200, Events: events, Seed: 5})
}

// DetectorBenchSeries is the canonical level-shift detector series: a
// jittery baseline with a sustained level episode every 4096 samples
// and occasional isolated spikes, deterministic in n. It exercises the
// detector's whole state machine — inlier maintenance (the MAD hot
// path), outlier runs, confirmed shifts with window rebuilds.
// BenchmarkDetectorObserve and the harness's detector scenario feed
// exactly this.
func DetectorBenchSeries(n int) []float64 {
	s := make([]float64, n)
	state := uint64(0x9e3779b97f4a7c15)
	level := 40.0
	for i := range s {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		if i > 0 && i%4096 == 0 { // sustained episode: shift and revert
			if level == 40 {
				level = 90
			} else {
				level = 40
			}
		}
		jitter := float64(state%2048)/1024 - 1 // [-1, 1)
		s[i] = level + 2*jitter
		if state%977 == 0 { // isolated spike: alarms without a run
			s[i] += 60
		}
	}
	return s
}
