// The federated-fleet experiment: a full scale-out run through every
// real component — two analyzer members serving /healthz and /reports
// over HTTP, a federation.Coordinator probing, assigning, and merging,
// and agents resolving their analyzer through the coordinator's /assign
// endpoint — with one member killed mid-burst to measure failover.
package experiments

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"gretel/internal/agent"
	"gretel/internal/core"
	"gretel/internal/federation"
	"gretel/internal/replay"
	"gretel/internal/trace"
)

// ClusterResult is the outcome of one federated soak.
type ClusterResult struct {
	// Members is the fleet size (one killed mid-run).
	Members int
	// Sent is the total events streamed across all deployments.
	Sent uint64
	// Delivered is the total events analyzed fleet-wide; it exceeds Sent
	// by Replayed, the survivor's re-analysis of the victim's retained
	// prefix (failover's at-least-once cost).
	Delivered uint64
	Replayed  uint64
	// Missing and Dups are the transport ledger at the final owners:
	// both must be zero (zero silent loss through the failover).
	Missing, Dups uint64
	// Reports is the fleet-wide report count; Merged is how many the
	// coordinator merged (Late arrived behind the reorder watermark,
	// MergeDups were rejected by the per-incarnation dedup).
	Reports   int
	Merged    uint64
	Late      uint64
	MergeDups uint64
	// EpochStart/EpochEnd bracket the run: the kill must bump the epoch.
	EpochStart, EpochEnd uint64
	// Victim names the killed member; Failover is how long the fleet
	// took from the kill until the survivor had admitted everything the
	// victim ever owned.
	Victim   string
	Failover time.Duration
	// Wall is the whole run's wall-clock time.
	Wall time.Duration
}

// clusterMember bundles one analyzer member's moving parts.
type clusterMember struct {
	cfg      federation.MemberConfig
	recv     *agent.Receiver
	analyzer *core.Analyzer
	log      *federation.ReportLog
	srv      *http.Server
	done     chan struct{}
}

func (m *clusterMember) kill() {
	m.srv.Close() // probes start failing: the coordinator declares death
	m.recv.Close()
}

// Cluster runs the federated fleet soak: two members, two monitored
// deployments streaming ~events each, the owner of the first deployment
// killed after its first half. Every layer is the production one — the
// coordinator talks to members over HTTP exactly as gretel-coord does,
// and agents resolve their analyzer through GET /assign exactly as
// gretel-agent does.
func Cluster(seed int64, events int) (ClusterResult, error) {
	lib := BenchLibrary()
	streams := [][]trace.Event{
		replay.Synthesize(replay.StreamConfig{Events: events, Concurrency: 40, FaultEvery: 400, Seed: seed}),
		replay.Synthesize(replay.StreamConfig{Events: events, Concurrency: 40, FaultEvery: 400, Seed: seed + 1}),
	}

	// Members: receiver + analyzer + report log + HTTP surface.
	var members []*clusterMember
	defer func() {
		for _, m := range members {
			m.srv.Close()
			m.recv.Close()
		}
	}()
	for _, name := range []string{"alpha", "beta"} {
		recv, err := agent.ListenConfig(agent.ReceiverConfig{
			Addr: "127.0.0.1:0", ReadTimeout: 100 * time.Millisecond,
		})
		if err != nil {
			return ClusterResult{}, err
		}
		a := core.New(lib, core.Config{Alpha: 256, Member: name})
		lg := federation.NewReportLog(0)
		a.OnReport(lg.Record)
		mux := http.NewServeMux()
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) { w.Write([]byte("ok")) })
		mux.Handle("/reports", lg.Handler())
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			recv.Close()
			return ClusterResult{}, err
		}
		srv := &http.Server{Handler: mux}
		go srv.Serve(ln)
		m := &clusterMember{
			cfg: federation.MemberConfig{
				Name: name, EventAddr: recv.Addr(), BaseURL: "http://" + ln.Addr().String(),
			},
			recv: recv, analyzer: a, log: lg, srv: srv, done: make(chan struct{}),
		}
		go func() {
			replay.DriveTransport(m.analyzer, m.recv, nil)
			close(m.done)
		}()
		members = append(members, m)
	}

	// Coordinator, plus its /assign endpoint on a real listener so the
	// agents resolve over HTTP like gretel-agent does.
	cfgs := make([]federation.MemberConfig, len(members))
	byName := map[string]*clusterMember{}
	for i, m := range members {
		cfgs[i] = m.cfg
		byName[m.cfg.Name] = m
	}
	coord, err := federation.NewCoordinator(federation.CoordinatorConfig{
		Members:       cfgs,
		ProbeInterval: 25 * time.Millisecond,
		PullInterval:  25 * time.Millisecond,
		Window:        100 * time.Millisecond,
		DownFails:     2,
	})
	if err != nil {
		return ClusterResult{}, err
	}
	defer coord.Close()
	coordLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return ClusterResult{}, err
	}
	coordMux := http.NewServeMux()
	coordMux.Handle("/assign", coord.AssignHandler())
	coordSrv := &http.Server{Handler: coordMux}
	go coordSrv.Serve(coordLn)
	defer coordSrv.Close()
	assignURL := "http://" + coordLn.Addr().String() + "/assign"
	resolve := func(key string) func() (string, error) {
		return func() (string, error) {
			resp, err := http.Get(assignURL + "?agent=" + url.QueryEscape(key))
			if err != nil {
				return "", err
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return "", fmt.Errorf("assign: %s", resp.Status)
			}
			var asg federation.Assignment
			if err := json.NewDecoder(resp.Body).Decode(&asg); err != nil {
				return "", err
			}
			return asg.Addr, nil
		}
	}

	deadline := time.Now().Add(30 * time.Second)
	for coord.Epoch() == 0 || len(aliveNames(coord)) != len(members) {
		if time.Now().After(deadline) {
			return ClusterResult{}, fmt.Errorf("members never became alive")
		}
		time.Sleep(5 * time.Millisecond)
	}
	res := ClusterResult{Members: len(members), EpochStart: coord.Epoch()}

	// The victim is whichever member owns the first deployment.
	asg, err := coord.Assignment("dep-1")
	if err != nil {
		return ClusterResult{}, err
	}
	res.Victim = asg.Member
	victim := byName[asg.Member]

	// Stream both deployments; pause at half, kill the victim, resume.
	start := time.Now()
	halfDone := make(chan struct{}, len(streams))
	resume := make(chan struct{})
	errc := make(chan error, 2*len(streams))
	var killedAt time.Time
	var wg sync.WaitGroup
	for i := range streams {
		key, stream := fmt.Sprintf("dep-%d", i+1), streams[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			snd, err := agent.DialConfig(agent.SenderConfig{
				Resolve: resolve(key), Agent: key,
				Ring:       1 << 18, // retain everything: failover loses nothing
				Heartbeat:  5 * time.Millisecond,
				BackoffMin: 2 * time.Millisecond, BackoffMax: 20 * time.Millisecond,
				WriteTimeout: 2 * time.Second, DrainTimeout: 30 * time.Second,
			})
			if err != nil {
				errc <- err
				return
			}
			defer snd.Close()
			for j := range stream {
				snd.Send(stream[j])
				if j == len(stream)/2 {
					halfDone <- struct{}{}
					<-resume
				}
				if j%64 == 63 {
					time.Sleep(50 * time.Microsecond)
				}
			}
			wait := time.Now().Add(60 * time.Second)
			for {
				owner := ownerOf(coord, byName, key)
				st := owner.recv.AgentStats()[key]
				if st.LastSeq >= uint64(len(stream)) {
					if st.Missing != 0 || st.Dups != 0 {
						errc <- fmt.Errorf("%s: ledger broken at final owner: missing=%d dups=%d", key, st.Missing, st.Dups)
					}
					return
				}
				if time.Now().After(wait) {
					errc <- fmt.Errorf("%s: final owner stuck at %d/%d", key, st.LastSeq, len(stream))
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}
	for range streams {
		<-halfDone
	}
	// Make the failover mean something: the victim must have admitted
	// and analyzed every first half it owns before it dies, so the
	// survivor's replay is a real re-analysis, not a fresh start.
	var victimAdmitted uint64
	for i := range streams {
		key := fmt.Sprintf("dep-%d", i+1)
		if asg, err := coord.Assignment(key); err == nil && asg.Member == victim.cfg.Name {
			half := uint64(len(streams[i])/2 + 1)
			waitUntil(deadline, func() bool {
				return victim.recv.AgentStats()[key].LastSeq >= half
			})
			victimAdmitted += half
		}
	}
	waitUntil(deadline, func() bool {
		return victim.analyzer.Stats.Events >= victimAdmitted
	})
	// And let the coordinator pull everything the victim has reported so
	// far: its log dies with it.
	waitUntil(deadline, func() bool {
		return coordCursorCaughtUp(coord, victim.cfg.Name, victim.log)
	})
	killedAt = time.Now()
	victim.kill()
	close(resume)
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		return ClusterResult{}, err
	}
	res.Failover = time.Since(killedAt)
	res.Wall = time.Since(start)

	// Shut the fleet down, then close the coordinator (its final pull
	// drains the survivors' logs) and fold up the ledgers.
	for _, m := range members {
		m.recv.Close()
		<-m.done
	}
	waitUntil(time.Now().Add(10*time.Second), func() bool {
		pulled := uint64(0)
		for _, m := range members {
			if m != victim {
				pulled += uint64(m.log.Len())
			}
		}
		return coord.Cluster().Merged >= pulled
	})
	res.EpochEnd = coord.Epoch()
	if res.EpochEnd <= res.EpochStart {
		return ClusterResult{}, fmt.Errorf("kill did not bump the epoch (%d -> %d)", res.EpochStart, res.EpochEnd)
	}

	for _, stream := range streams {
		res.Sent += uint64(len(stream))
	}
	for _, m := range members {
		res.Delivered += m.analyzer.Stats.Events
		res.Reports += m.log.Len()
		for _, st := range m.recv.AgentStats() {
			res.Missing += st.Missing
			res.Dups += st.Dups
		}
	}
	res.Replayed = res.Delivered - res.Sent
	res.Merged = coord.Cluster().Merged
	return res, nil
}

// aliveNames lists the members the coordinator currently sees alive.
func aliveNames(c *federation.Coordinator) []string {
	var out []string
	for _, m := range c.Cluster().Members {
		if m.Alive {
			out = append(out, m.Name)
		}
	}
	return out
}

// ownerOf resolves a key's current owner through the coordinator.
func ownerOf(c *federation.Coordinator, byName map[string]*clusterMember, key string) *clusterMember {
	if asg, err := c.Assignment(key); err == nil {
		return byName[asg.Member]
	}
	// No alive members is transient mid-kill; fall back to any member so
	// the caller's polling loop keeps going.
	for _, m := range byName {
		return m
	}
	return nil
}

// coordCursorCaughtUp reports whether the coordinator's pull cursor for
// member has reached the member log's high water.
func coordCursorCaughtUp(c *federation.Coordinator, member string, lg *federation.ReportLog) bool {
	high := lg.Page(0).Next - 1
	for _, m := range c.Cluster().Members {
		if m.Name == member {
			return m.Since >= high
		}
	}
	return false
}

func waitUntil(deadline time.Time, cond func() bool) bool {
	for !cond() {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
	return true
}

// FormatCluster renders the federated soak outcome.
func FormatCluster(res ClusterResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "federated fleet: %d members, victim %s killed mid-burst\n", res.Members, res.Victim)
	fmt.Fprintf(&b, "  events:   %d sent, %d analyzed (%d replayed into the survivor)\n", res.Sent, res.Delivered, res.Replayed)
	fmt.Fprintf(&b, "  ledger:   missing=%d dups=%d (zero silent loss through failover)\n", res.Missing, res.Dups)
	fmt.Fprintf(&b, "  reports:  %d produced fleet-wide, %d merged by the coordinator\n", res.Reports, res.Merged)
	fmt.Fprintf(&b, "  epochs:   %d -> %d (membership change on the kill)\n", res.EpochStart, res.EpochEnd)
	fmt.Fprintf(&b, "  failover: %v from kill to survivor fully caught up (wall %v)\n",
		res.Failover.Round(time.Millisecond), res.Wall.Round(time.Millisecond))
	return b.String()
}
