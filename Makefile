# GRETEL reproduction — common tasks. Everything is plain `go` under the
# hood; the targets just bundle the invocations used in README/EXPERIMENTS.

GO ?= go

.PHONY: all build test race bench bench-go bench-baseline bench-gate experiments examples fmt vet clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Scenario bench harness (full workloads, pinned iteration count);
# writes BENCH_<scenario>.json into out/bench plus a table on stderr.
bench:
	$(GO) run ./cmd/gretel-bench run -scenario all -iterations 3 -report json -out-dir out/bench

# The classic go-test benchmarks (same workloads via internal/experiments/bench.go).
bench-go:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Regenerate the committed short-mode baselines at the repo root.
bench-baseline:
	$(GO) run ./cmd/gretel-bench run -scenario all -short -iterations 3 -report json -out-dir .

# The CI regression gate: fresh short-mode run vs committed baselines.
bench-gate:
	bash ci/bench_gate.sh

# Regenerate every table and figure (writes CSVs under out/).
experiments:
	$(GO) run ./cmd/gretel-experiments -exp all -out out

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/vmcreate_fault
	$(GO) run ./examples/api_bottleneck
	$(GO) run ./examples/parallel_ops
	$(GO) run ./examples/rootcause
	$(GO) run ./examples/correlation

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	rm -rf out
