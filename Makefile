# GRETEL reproduction — common tasks. Everything is plain `go` under the
# hood; the targets just bundle the invocations used in README/EXPERIMENTS.

GO ?= go

.PHONY: all build test race bench experiments examples fmt vet clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Regenerate every table and figure (writes CSVs under out/).
experiments:
	$(GO) run ./cmd/gretel-experiments -exp all -out out

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/vmcreate_fault
	$(GO) run ./examples/api_bottleneck
	$(GO) run ./examples/parallel_ops
	$(GO) run ./examples/rootcause
	$(GO) run ./examples/correlation

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	rm -rf out
