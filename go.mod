module gretel

go 1.22
