// Command gretel-pcap records simulated deployment traffic to standard
// libpcap capture files and analyzes captures offline — the file-based
// counterpart of the paper's Bro + tcpreplay pipeline. Captures are real
// pcap (Ethernet/IPv4/TCP with valid checksums) and open in tcpdump or
// Wireshark.
//
// Usage:
//
//	gretel-pcap -record run.pcap -parallel 50 -faults 2 -duration 2m
//	gretel-pcap -analyze run.pcap            # offline fault localization
//	gretel-pcap -inspect run.pcap            # capture summary
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"gretel/internal/agent"
	"gretel/internal/capture"
	"gretel/internal/cluster"
	"gretel/internal/core"
	"gretel/internal/faults"
	"gretel/internal/fingerprint"
	"gretel/internal/openstack"
	"gretel/internal/tempest"
	"gretel/internal/trace"
)

func main() {
	var (
		recordPath  = flag.String("record", "", "record a workload capture to this pcap file")
		analyzePath = flag.String("analyze", "", "run fault localization over this pcap file")
		inspectPath = flag.String("inspect", "", "print a summary of this pcap file")
		seed        = flag.Int64("seed", 1, "catalog and workload seed")
		parallel    = flag.Int("parallel", 50, "concurrent tests while recording")
		nFaults     = flag.Int("faults", 2, "faults to inject while recording")
		duration    = flag.Duration("duration", 2*time.Minute, "simulated recording duration")
	)
	flag.Parse()

	switch {
	case *recordPath != "":
		record(*recordPath, *seed, *parallel, *nFaults, *duration)
	case *analyzePath != "":
		analyze(*analyzePath, *seed)
	case *inspectPath != "":
		inspect(*inspectPath)
	default:
		flag.Usage()
	}
}

func record(path string, seed int64, parallel, nFaults int, duration time.Duration) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	cat := tempest.NewCatalog(seed)
	rng := rand.New(rand.NewSource(seed))
	d := openstack.NewDeployment(openstack.Config{
		Seed:            seed,
		HeartbeatPeriod: 10 * time.Second,
		ThinkMin:        50 * time.Millisecond,
		ThinkMax:        150 * time.Millisecond,
	})
	plan := faults.NewPlan()
	d.Injector = plan
	rec := capture.NewRecorder(f)
	d.Fabric.Tap(rec.Tap)

	stopPool := tempest.SustainPool(d, cat, parallel, rng)
	for i := 0; i < nFaults; i++ {
		test := cat.Tests[rng.Intn(len(cat.Tests))]
		at := duration/4 + time.Duration(i)*duration/2/time.Duration(max(nFaults, 1))
		d.Sim.After(at, func() {
			inst := d.Start(test.Op, nil)
			plan.Add(faults.Rule{OpID: inst.ID, StepIndex: stepFor(test.Op), Once: true,
				Outcome: openstack.Outcome{Status: 500, ErrText: "Internal Server Error: injected fault"}})
		})
	}
	d.Sim.RunUntil(d.Sim.Now().Add(duration))
	stopPool()
	d.StopNoise()
	d.Sim.Run()
	if rec.Err != nil {
		log.Fatal(rec.Err)
	}
	if err := rec.Flush(); err != nil {
		log.Fatal(err)
	}
	log.Printf("recorded %d frames to %s", rec.Frames, path)
}

func stepFor(op *openstack.Operation) int {
	var idxs []int
	for i, s := range op.Steps {
		if !s.Noise && s.API.Kind == trace.REST && s.API.StateChanging() {
			idxs = append(idxs, i)
		}
	}
	if len(idxs) == 0 {
		return 0
	}
	return idxs[len(idxs)*3/5]
}

// analyze replays the capture through the monitoring agent and analyzer.
// A deployment with the same seed supplies the IP-to-node mapping.
func analyze(path string, seed int64) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	cat := tempest.NewCatalog(seed)
	lib := fingerprint.NewLibrary()
	for _, test := range cat.Tests {
		lib.AddAPIs(test.Op.Name, test.Op.Category.String(), test.Op.APIs())
	}
	analyzer := core.New(lib, core.Config{Prate: 1600, T: 10})
	mon := agent.NewMonitor("pcap", analyzer.Ingest, nil)

	resolver := capture.ResolverFromFabric(openstack.NewDeployment(openstack.Config{Seed: seed}).Fabric)
	n, err := capture.Replay(f, resolver, mon.HandlePacket)
	if err != nil {
		log.Fatal(err)
	}
	analyzer.Flush()

	fmt.Printf("replayed %d frames (%d parse errors)\n", n, mon.ParseErrors)
	fmt.Printf("events: %d, faults: %d, reports: %d\n",
		analyzer.Stats.Events, analyzer.Stats.Faults, len(analyzer.Reports()))
	for _, rep := range analyzer.Reports() {
		fmt.Printf("- %s fault on %v: %d operations matched (precision %.2f%%)\n",
			rep.Kind, rep.OffendingAPI, len(rep.Candidates), rep.Precision*100)
		for i, c := range rep.Candidates {
			if i == 5 {
				fmt.Printf("    ...\n")
				break
			}
			fmt.Printf("    %s\n", c)
		}
	}
}

func inspect(path string) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	var frames, restMsgs, rpcMsgs, errMsgs int
	var bytes uint64
	flows := map[uint64]bool{}
	var first, last time.Time
	mon := agent.NewMonitor("inspect", func(ev trace.Event) {
		switch ev.Type {
		case trace.RESTRequest, trace.RESTResponse:
			restMsgs++
		default:
			rpcMsgs++
		}
		if ev.Faulty() {
			errMsgs++
		}
	}, nil)
	n, err := capture.Replay(f, nil, func(p cluster.Packet) {
		frames++
		bytes += uint64(len(p.Payload))
		flows[p.ConnID] = true
		if first.IsZero() {
			first = p.Time
		}
		last = p.Time
		mon.HandlePacket(p)
	})
	if err != nil {
		log.Fatal(err)
	}
	_ = n
	span := last.Sub(first)
	fmt.Printf("frames:     %d (%.1f KB payload) over %v\n", frames, float64(bytes)/1024, span.Round(time.Second))
	fmt.Printf("flows:      %d\n", len(flows))
	fmt.Printf("messages:   %d REST, %d RPC (%d parse errors)\n", restMsgs, rpcMsgs, mon.ParseErrors)
	fmt.Printf("errors:     %d fault-marked messages\n", errMsgs)
	if span > 0 {
		fmt.Printf("rates:      %.0f frames/s, %.2f Mbps\n",
			float64(frames)/span.Seconds(), float64(bytes)*8/1e6/span.Seconds())
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
