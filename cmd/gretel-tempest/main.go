// Command gretel-tempest drives the Tempest-analogue workload against
// the simulated OpenStack deployment, either running selected tests in
// isolation or sustaining a concurrent pool, and reports per-category
// pass/fail counts. It is the workload side of the evaluation, usable
// standalone to inspect what the suite does.
//
// Usage:
//
//	gretel-tempest -list                    # print the catalog
//	gretel-tempest -run compute-vm-create-0000
//	gretel-tempest -parallel 100 -duration 2m
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	"gretel/internal/openstack"
	"gretel/internal/tempest"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "catalog seed")
		list     = flag.Bool("list", false, "list catalog tests and exit")
		runName  = flag.String("run", "", "run one named test in isolation")
		parallel = flag.Int("parallel", 0, "sustain this many concurrent tests")
		duration = flag.Duration("duration", 2*time.Minute, "simulated duration for -parallel")
	)
	flag.Parse()

	cat := tempest.NewCatalog(*seed)

	switch {
	case *list:
		for _, c := range openstack.Categories() {
			fmt.Printf("%s (%d tests)\n", c, len(cat.ByCategory[c]))
			for _, test := range cat.ByCategory[c][:minInt(5, len(cat.ByCategory[c]))] {
				fmt.Printf("  %-40s %3d steps (fingerprint %d)\n",
					test.Op.Name, len(test.Op.Steps), test.Op.FingerprintLen(true))
			}
			if len(cat.ByCategory[c]) > 5 {
				fmt.Printf("  ... and %d more\n", len(cat.ByCategory[c])-5)
			}
		}

	case *runName != "":
		var target *tempest.Test
		for _, test := range cat.Tests {
			if test.Op.Name == *runName || strings.HasPrefix(test.Op.Name, *runName) {
				target = test
				break
			}
		}
		if target == nil {
			log.Fatalf("no test named %q (try -list)", *runName)
		}
		var stats tempest.RunStats
		start := time.Now()
		apis := tempest.RunIsolated(target, *seed, &stats)
		if apis == nil {
			log.Fatalf("test %s failed", target.Op.Name)
		}
		fmt.Printf("%s: ok\n", target.Op.Name)
		fmt.Printf("  API invocations captured: %d\n", len(apis))
		fmt.Printf("  events: %d REST, %d RPC\n", stats.RESTEvents, stats.RPCEvents)
		fmt.Printf("  wall time: %v\n", time.Since(start).Round(time.Millisecond))

	case *parallel > 0:
		d := openstack.NewDeployment(openstack.Config{
			Seed:            *seed,
			HeartbeatPeriod: 10 * time.Second,
			ThinkMin:        50 * time.Millisecond,
			ThinkMax:        150 * time.Millisecond,
		})
		rng := rand.New(rand.NewSource(*seed))
		stopPool := tempest.SustainPool(d, cat, *parallel, rng)
		start := time.Now()
		d.Sim.RunUntil(d.Sim.Now().Add(*duration))
		stopPool()
		d.StopNoise()
		d.Sim.Run()

		byState := map[openstack.InstanceState]int{}
		byCat := map[openstack.Category]int{}
		for _, inst := range d.Completed() {
			byState[inst.State]++
			byCat[inst.Op.Category]++
		}
		fmt.Printf("completed %d test instances over %v simulated (%v wall):\n",
			len(d.Completed()), *duration, time.Since(start).Round(time.Millisecond))
		for _, c := range openstack.Categories() {
			fmt.Printf("  %-8s %d\n", c, byCat[c])
		}
		fmt.Printf("  states: %d succeeded, %d failed, %d aborted\n",
			byState[openstack.StateSucceeded], byState[openstack.StateFailed], byState[openstack.StateAborted])

	default:
		flag.Usage()
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
