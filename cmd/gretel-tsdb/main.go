// Command gretel-tsdb is the embedded time-series store for GRETEL's
// telemetry export pipeline: a single-binary, zero-dependency receiver
// that turns long soaks into queryable per-interval history.
//
// It accepts InfluxDB line protocol on POST /write, serves range
// queries as JSON on GET /query?series=<key>&from=<ns>&to=<ns>, lists
// known series on GET /series, and exposes its own accounting on
// GET /stats — alongside the standard /metrics, /healthz, and
// /debug/pprof/ of every gretel daemon. Data lands in append-only,
// time-partitioned segments (WAL record framing, CRC-checked) under
// -dir and survives crashes: recovery replays every intact record and
// quarantines torn tails with counted, never silent, loss.
//
// Usage:
//
//	gretel-tsdb -listen :9870 -dir /var/lib/gretel-tsdb
//	gretel -telemetry-export http://127.0.0.1:9870 ...
//	curl 'http://127.0.0.1:9870/series'
//	curl 'http://127.0.0.1:9870/query?series=core.events_ingested,host=h,proc=gretel,rev=r'
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gretel/internal/telemetry"
	"gretel/internal/tsdb"
)

func main() {
	var (
		listen    = flag.String("listen", ":9870", "address to serve /write, /query, /series, /metrics on")
		dir       = flag.String("dir", "gretel-tsdb-data", "data directory for segments")
		partition = flag.Duration("partition", time.Hour, "time-partition span per segment")
		segBytes  = flag.Int64("segment-bytes", 64<<20, "rotate the active segment beyond this size")
	)
	flag.Parse()

	telemetry.SetNotReadyReason("recovering segments")
	store, err := tsdb.Open(tsdb.Options{
		Dir:          *dir,
		PartitionDur: *partition,
		SegmentBytes: *segBytes,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := store.Stats()
	if st.Recovered > 0 || st.SkippedBytes > 0 {
		log.Printf("recovered %d points across %d series from %d segments (%d bytes quarantined)",
			st.Recovered, st.Series, st.Segments, st.SkippedBytes)
	}

	bound, shutdown, err := telemetry.Serve(*listen, nil, store.Mounts()...)
	if err != nil {
		log.Fatal(err)
	}
	telemetry.SetReady(true)
	log.Printf("gretel-tsdb on http://%s (write: POST /write, query: GET /query?series=...)", bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	telemetry.SetReady(false)
	shutdown()
	if err := store.Close(); err != nil {
		log.Fatalf("closing store: %v", err)
	}
	final := store.Stats()
	log.Printf("stopped: %d points in %d series (%d rejected lines)", final.Points, final.Series, final.Rejected)
}
