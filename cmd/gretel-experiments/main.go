// Command gretel-experiments regenerates every table and figure of the
// paper's evaluation (§7) on the simulated deployment. Each experiment
// prints the same rows/series the paper reports; EXPERIMENTS.md records
// the paper-vs-measured comparison.
//
// Usage:
//
//	gretel-experiments -exp table1
//	gretel-experiments -exp fig7a
//	gretel-experiments -exp all
//
// Experiments: table1, fig5, fig6, fig7a, fig7b, fig7c, fig8a, fig8b,
// fig8c, hansel, overhead, explain, all. The extra "reanalyze"
// experiment (never part of "all") replays a write-ahead log captured
// by `gretel -wal DIR` through a fresh analyzer — re-running Algorithm
// 2 offline over a recorded incident:
//
//	gretel-experiments -exp reanalyze -wal-dir /var/lib/gretel/wal
//	gretel-experiments -exp reanalyze -wal-dir d -wal-from 1000 -wal-to 2000
//
// The explain experiment reruns the Fig. 8a fault scenario with
// evidence tracing on and, with -out, writes out/explain.txt: one block
// per injected fault naming the blamed operation, the winning
// fingerprint, and the closest rejected candidate with its rejection
// reason.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"gretel/internal/core"
	"gretel/internal/experiments"
	"gretel/internal/telemetry"
	"gretel/internal/telemetry/export"
	"gretel/internal/tempest"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment to run")
		seed      = flag.Int64("seed", 1, "workload seed")
		fast      = flag.Bool("fast", false, "reduced scales for a quick pass")
		outDir    = flag.String("out", "", "also write each figure's raw data as CSV into this directory")
		workers   = flag.Int("detect-workers", 0, "fig8c detection worker pool size (0 = inline detection)")
		shards    = flag.Int("ingest-shards", 0, "fig8c sharded ingest front-end size (0 = inline ingest)")
		ingBatch  = flag.Int("ingest-batch", 0, "fig8c ingest batch size (0 = default 256 with shards)")
		walDir    = flag.String("wal-dir", "", "reanalyze: write-ahead log directory captured by gretel -wal")
		walFrom   = flag.Uint64("wal-from", 0, "reanalyze: first WAL sequence to replay (0 = from the start)")
		walTo     = flag.Uint64("wal-to", 0, "reanalyze: last WAL sequence to replay (0 = to the end)")
		exportURL = flag.String("telemetry-export", "", "ship per-interval telemetry to this gretel-tsdb base URL while experiments run (empty disables)")
		exportIvl = flag.Duration("export-interval", time.Second, "sampling interval for -telemetry-export")
		exportBuf = flag.Int("export-buffer", 10000, "points buffered while the TSDB is unreachable (oldest shed beyond this, counted)")
	)
	flag.Parse()
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatal(err)
		}
		// Per-run sections append; start each invocation fresh.
		os.Remove(filepath.Join(*outDir, "telemetry.txt"))
		os.Remove(filepath.Join(*outDir, "telemetry.json"))
		os.Remove(filepath.Join(*outDir, "telemetry.lp"))
	}

	// Live export while experiments run. The per-experiment
	// telemetry.Reset() shows up to the sampler as a monotonic reset —
	// detected, not mis-counted — so the shipped stream stays a valid
	// per-interval history across experiment boundaries.
	if *exportURL != "" {
		exporter, err := export.Start(export.Options{
			URL: *exportURL, Interval: *exportIvl, Buffer: *exportBuf, Proc: "gretel-experiments",
		})
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			exporter.Drain(5 * time.Second)
			exporter.Close()
			es := exporter.Stats()
			log.Printf("export: sampled %d delivered %d shed %d", es.Sampled, es.Delivered, es.Shed)
		}()
		log.Printf("exporting telemetry to %s every %v", *exportURL, *exportIvl)
	}
	// lpTags stamp out/telemetry.lp points with the same host/proc/rev
	// identity the live exporter uses, so a bulk-loaded file and a live
	// stream land in comparable series.
	lpTags := export.NewSampler(telemetry.Default(), "gretel-experiments").BaseTags()

	// Each experiment runs against a zeroed default registry; its
	// telemetry snapshot is appended to out/telemetry.txt — and the
	// machine-readable mirror out/telemetry.json, one entry per
	// experiment in the same snapshot schema (provenance included) the
	// bench harness embeds in BENCH_*.json — so every figure's raw data
	// ships with the pipeline counters and stage latencies that produced
	// it.
	var sections []telemetrySection
	run := func(name string, fn func()) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("=== %s ===\n", name)
		telemetry.Reset()
		start := time.Now()
		fn()
		fmt.Printf("(%s took %v)\n\n", name, time.Since(start).Round(time.Millisecond))
		snap := telemetry.Snap()
		appendTelemetry(*outDir, name, snap)
		appendTelemetryLP(*outDir, name, &snap, lpTags)
		// Rewrite the JSON after every experiment: an interrupted "all"
		// run still leaves a valid file covering what completed.
		sections = append(sections, telemetrySection{Experiment: name, Telemetry: snap})
		writeTelemetryJSON(*outDir, sections)
	}

	parallels := []int{100, 200, 300, 400}
	faultCounts := []int{1, 4, 8, 16}
	events := 200000
	if *fast {
		parallels = []int{100, 200}
		faultCounts = []int{4, 8}
		events = 40000
	}

	run("table1", func() {
		res := experiments.Table1(*seed, 2)
		fmt.Print(experiments.FormatTable1(res))
	})

	run("fig5", func() {
		cat := tempest.NewCatalog(*seed)
		lib := experiments.GroundTruthLibrary(cat)
		points := experiments.Fig5(lib, 70)
		fmt.Print(experiments.FormatFig5(points))
		rows := [][]string{{"operation", "overlap"}}
		for _, p := range points {
			rows = append(rows, []string{p.Name, fmt.Sprintf("%.4f", p.Overlap)})
		}
		writeCSV(*outDir, "fig5", rows)
	})

	run("fig6", func() {
		concurrent := 400
		if *fast {
			concurrent = 120
		}
		res := experiments.Fig6(*seed, concurrent)
		fmt.Print(experiments.FormatLatencySeries(res.Series, 20))
		fmt.Printf("performance reports: %d\n", len(res.Reports))
		writeCSV(*outDir, "fig6", seriesRows(res.Series))
	})

	run("fig7a", func() {
		cells := experiments.Fig7a(*seed, parallels, faultCounts)
		fmt.Print(experiments.FormatPrecision(cells))
		writeCSV(*outDir, "fig7a", cellRows(cells))
	})

	run("fig7b", func() {
		// Fig 7b is the 8-fault row of the 7a sweep with both series.
		cells := experiments.Fig7a(*seed, parallels, []int{8})
		fmt.Print(experiments.FormatPrecision(cells))
		writeCSV(*outDir, "fig7b", cellRows(cells))
	})

	run("fig7c", func() {
		withRPC, withoutRPC := experiments.Fig7c(*seed)
		fmt.Println("with RPC symbols in fingerprints:")
		fmt.Print(experiments.FormatPrecision([]experiments.PrecisionCell{withRPC}))
		fmt.Println("without RPC symbols (pruned, the default):")
		fmt.Print(experiments.FormatPrecision([]experiments.PrecisionCell{withoutRPC}))
		writeCSV(*outDir, "fig7c", cellRows([]experiments.PrecisionCell{withRPC, withoutRPC}))
	})

	run("fig8a", func() {
		cells := experiments.Fig8a(*seed, parallels)
		fmt.Print(experiments.FormatPrecision(cells))
		writeCSV(*outDir, "fig8a", cellRows(cells))
	})

	run("fig8b", func() {
		concurrent := 200
		if *fast {
			concurrent = 100
		}
		res := experiments.Fig8b(*seed, concurrent)
		fmt.Print(experiments.FormatLatencySeries(res.Series, 20))
		fmt.Printf("alarms: %d inside the 10-minute window, %d across the episode (paper: 18)\n",
			res.AlarmsDuring, res.AlarmsEpisode)
		fmt.Printf("temporary-change episodes classified: %d (the bounded injection)\n", res.Series.TempChanges)
		writeCSV(*outDir, "fig8b", seriesRows(res.Series))
	})

	run("fig8c", func() {
		points := experiments.Fig8c(*seed, events, nil, core.Config{
			DetectWorkers: *workers, IngestShards: *shards, IngestBatch: *ingBatch,
		})
		fmt.Print(experiments.FormatFig8c(points))
		rows := [][]string{{"fault_every", "events_per_sec", "mbps", "reports"}}
		for _, p := range points {
			rows = append(rows, []string{
				strconv.Itoa(p.FaultEvery),
				fmt.Sprintf("%.0f", p.Result.EventsPerSec),
				fmt.Sprintf("%.1f", p.Result.Mbps),
				strconv.Itoa(p.Result.Reports),
			})
		}
		writeCSV(*outDir, "fig8c", rows)
	})

	run("hansel", func() {
		g, h := experiments.HanselComparison(*seed, events)
		fmt.Print(experiments.FormatComparison(g, h))
		withT, withoutT := experiments.HanselLinking(*seed, events/2)
		fmt.Printf("HANSEL fault chains implicate %.1f operations with shared tenant ids (%.1f without);\n", withT, withoutT)
		fmt.Printf("GRETEL reports one candidate set per fault (see fig7b).\n")
	})

	run("explain", func() {
		parallel, faults := 100, 16
		if *fast {
			parallel, faults = 60, 4
		}
		res := experiments.Explain(*seed, parallel, faults)
		text := experiments.FormatExplain(res)
		fmt.Print(experiments.FormatPrecision([]experiments.PrecisionCell{res.Cell}))
		fmt.Print(text)
		writeText(*outDir, "explain", text)
	})

	run("overhead", func() {
		n := 100
		if *fast {
			n = 40
		}
		res := experiments.Overhead(*seed, n)
		fmt.Print(experiments.FormatOverhead(res))
	})

	// reanalyze needs an input log, so it never joins "all": run it only
	// when named explicitly.
	if *exp == "reanalyze" {
		if *walDir == "" {
			log.Fatal("reanalyze: -wal-dir is required (a directory captured by gretel -wal)")
		}
		run("reanalyze", func() {
			res, err := experiments.Reanalyze(*seed, *walDir, *walFrom, *walTo, core.Config{
				DetectWorkers: *workers, IngestShards: *shards, IngestBatch: *ingBatch,
			})
			if err != nil {
				log.Fatalf("reanalyze: %v", err)
			}
			text := experiments.FormatReanalyze(res)
			fmt.Print(text)
			writeText(*outDir, "reanalyze", text)
		})
	}

	// cluster spins up a real multi-process-shaped fleet (TCP receivers,
	// HTTP member endpoints, a live coordinator) and kills a member
	// mid-burst, so it stays out of "all": run it only when named.
	if *exp == "cluster" {
		run("cluster", func() {
			n := events / 8
			res, err := experiments.Cluster(*seed, n)
			if err != nil {
				log.Fatalf("cluster: %v", err)
			}
			text := experiments.FormatCluster(res)
			fmt.Print(text)
			writeText(*outDir, "cluster", text)
		})
	}

	switch *exp {
	case "all", "table1", "fig5", "fig6", "fig7a", "fig7b", "fig7c", "fig8a", "fig8b", "fig8c", "hansel", "overhead", "explain", "reanalyze", "cluster":
	default:
		log.Fatalf("unknown experiment %q", *exp)
	}
}

// appendTelemetry appends one experiment's registry snapshot as a named
// section of dir/telemetry.txt; dir=="" is a no-op.
func appendTelemetry(dir, name string, snap telemetry.Snapshot) {
	if dir == "" {
		return
	}
	path := filepath.Join(dir, "telemetry.txt")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		log.Printf("writing %s: %v", path, err)
		return
	}
	defer f.Close()
	fmt.Fprintf(f, "=== %s ===\n", name)
	if err := snap.WriteText(f); err != nil {
		log.Printf("writing %s: %v", path, err)
		return
	}
	fmt.Fprintln(f)
	log.Printf("appended telemetry for %s to %s (%s)", name, path, snap)
}

// appendTelemetryLP appends one experiment's snapshot to
// dir/telemetry.lp as InfluxDB line protocol — cumulative totals, one
// point per metric, tagged with the experiment name — so any run can
// be bulk-loaded into gretel-tsdb (curl --data-binary @out/telemetry.lp
// .../write) for inspection; dir=="" is a no-op.
func appendTelemetryLP(dir, name string, snap *telemetry.Snapshot, base []export.Tag) {
	if dir == "" {
		return
	}
	path := filepath.Join(dir, "telemetry.lp")
	tags := append(append([]export.Tag{}, base...), export.Tag{Key: "experiment", Value: name})
	data := export.AppendSnapshot(nil, snap, tags, time.Now().UnixNano())
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		log.Printf("writing %s: %v", path, err)
		return
	}
	defer f.Close()
	if _, err := f.Write(data); err != nil {
		log.Printf("writing %s: %v", path, err)
		return
	}
	log.Printf("appended %s line-protocol points to %s", name, path)
}

// telemetrySection is one experiment's entry in out/telemetry.json: the
// same snapshot schema the bench harness embeds in BENCH_*.json, so one
// set of tooling reads both.
type telemetrySection struct {
	Experiment string             `json:"experiment"`
	Telemetry  telemetry.Snapshot `json:"telemetry"`
}

// writeTelemetryJSON rewrites dir/telemetry.json with every section so
// far; dir=="" is a no-op.
func writeTelemetryJSON(dir string, sections []telemetrySection) {
	if dir == "" {
		return
	}
	path := filepath.Join(dir, "telemetry.json")
	b, err := json.MarshalIndent(sections, "", "  ")
	if err != nil {
		log.Printf("writing %s: %v", path, err)
		return
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		log.Printf("writing %s: %v", path, err)
	}
}

// writeText writes a finished text report to dir/name.txt; dir=="" is a
// no-op.
func writeText(dir, name, text string) {
	if dir == "" {
		return
	}
	path := filepath.Join(dir, name+".txt")
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		log.Printf("writing %s: %v", path, err)
		return
	}
	log.Printf("wrote %s", path)
}

// writeCSV writes rows (first row headers) to dir/name.csv; dir=="" is a
// no-op.
func writeCSV(dir, name string, rows [][]string) {
	if dir == "" {
		return
	}
	path := filepath.Join(dir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		log.Printf("writing %s: %v", path, err)
		return
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		log.Printf("writing %s: %v", path, err)
		return
	}
	log.Printf("wrote %s", path)
}

func cellRows(cells []experiments.PrecisionCell) [][]string {
	rows := [][]string{{"parallel", "faults", "reports", "precision", "matched", "api_only", "hit_rate", "beta", "max_delay_s"}}
	for _, c := range cells {
		rows = append(rows, []string{
			strconv.Itoa(c.Parallel), strconv.Itoa(c.Faults), strconv.Itoa(c.Reports),
			fmt.Sprintf("%.6f", c.AvgTheta), fmt.Sprintf("%.3f", c.AvgMatched),
			fmt.Sprintf("%.3f", c.AvgByErrorOnly), fmt.Sprintf("%.4f", c.HitRate),
			fmt.Sprintf("%.0f", c.AvgBeta), fmt.Sprintf("%.3f", c.MaxReportDelay.Seconds()),
		})
	}
	return rows
}

func seriesRows(s *experiments.LatencySeries) [][]string {
	rows := [][]string{{"t_unix_us", "latency_ms", "adjusted_ms"}}
	for _, p := range s.Points {
		rows = append(rows, []string{
			strconv.FormatInt(p.Time.UnixMicro(), 10),
			fmt.Sprintf("%.3f", float64(p.Latency)/1e6),
			fmt.Sprintf("%.3f", float64(p.Adjusted)/1e6),
		})
	}
	return rows
}
