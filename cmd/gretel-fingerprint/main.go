// Command gretel-fingerprint runs GRETEL's offline learning phase
// (Algorithm 1): it executes every test of the Tempest-analogue catalog
// in isolation on the simulated deployment, learns the operational
// fingerprints, prints the Table 1 characterization, and optionally
// saves the library for cmd/gretel.
//
// Usage:
//
//	gretel-fingerprint -seed 1 -runs 2 -o fingerprints.json
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"gretel/internal/experiments"
)

func main() {
	var (
		seed = flag.Int64("seed", 1, "catalog seed")
		runs = flag.Int("runs", 2, "isolated executions per test (LCS pruning needs >= 2)")
		out  = flag.String("o", "", "write the learned library to this JSON file")
	)
	flag.Parse()

	log.Printf("learning fingerprints for 1200 catalog tests (%d runs each)...", *runs)
	start := time.Now()
	res := experiments.Table1(*seed, *runs)
	log.Printf("learned %d fingerprints in %v", res.Library.Len(), time.Since(start).Round(time.Millisecond))

	fmt.Println()
	fmt.Print(experiments.FormatTable1(res))

	if *out != "" {
		if err := res.Library.SaveFile(*out); err != nil {
			log.Fatal(err)
		}
		log.Printf("library written to %s", *out)
	}
}
