// Command gretel-agent runs the distributed monitoring layer against a
// simulated OpenStack deployment and streams the parsed REST/RPC events
// to a gretel analyzer over TCP — the two-process demo of the paper's
// Bro-agents → analyzer architecture.
//
// The agent drives a workload (concurrent Tempest-analogue tests) on the
// simulated deployment, taps every wire message, parses it exactly as the
// in-process agents do, and forwards the events. Faults can be injected
// to exercise the analyzer's fault localization.
//
// Usage:
//
//	gretel-agent -analyzer 127.0.0.1:6166 -parallel 100 -faults 4 -duration 5m
//	gretel-agent -analyzer 127.0.0.1:6166 -telemetry :6168   # live agent metrics
//	gretel-agent -coord http://127.0.0.1:6170 -name site-a   # federated fleet
//
// With -telemetry, monitoring-layer counters (packets seen/parsed,
// events emitted per service, transport frames/drops) are served at
// /metrics with pprof at /debug/pprof/.
//
// With -coord, the analyzer address is resolved from a gretel-coord
// coordinator (GET /assign) before every dial attempt instead of taken
// from -analyzer. All of this deployment's streams share one partition
// key (-name), because REST/RPC pairing spans nodes: the whole
// deployment must land on one analyzer. When that analyzer dies the
// coordinator reassigns the key, the next redial resolves to the
// replacement, and the spool ring replays everything it retained there.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"time"

	"gretel/internal/agent"
	"gretel/internal/cluster"
	"gretel/internal/faults"
	"gretel/internal/federation"
	"gretel/internal/openstack"
	"gretel/internal/telemetry"
	"gretel/internal/telemetry/export"
	"gretel/internal/tempest"
	"gretel/internal/trace"
)

func main() {
	var (
		addr         = flag.String("analyzer", "127.0.0.1:6166", "analyzer event listener address")
		seed         = flag.Int64("seed", 1, "catalog and workload seed")
		parallel     = flag.Int("parallel", 100, "concurrent tests to sustain")
		nFaults      = flag.Int("faults", 4, "operational faults to inject")
		duration     = flag.Duration("duration", 5*time.Minute, "simulated workload duration")
		statePeriod  = flag.Duration("state-period", 5*time.Second, "distributed-state reporting period (0 disables)")
		scenarioF    = flag.String("scenario", "none", "case-study fault to stage: none, linuxbridge, diskfull, ntp")
		perNode      = flag.Bool("per-node", false, "run one monitoring agent (and TCP stream) per deployment node, as the paper deploys Bro")
		truth        = flag.Bool("truth", true, "decorate events with ground-truth operation ids")
		telAddr      = flag.String("telemetry", "", "serve /metrics and /debug/pprof on this address (e.g. :6168; empty disables)")
		connTimeout  = flag.Duration("connect-timeout", 30*time.Second, "give up if the analyzer is unreachable for this long at startup (dialing is lazy: the agent may start first)")
		heartbeat    = flag.Duration("heartbeat", time.Second, "liveness heartbeat period per agent stream (negative disables)")
		spool        = flag.Int("spool", 4096, "frames spooled in memory per stream while the analyzer is unreachable (oldest shed beyond this)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "wait this long at exit for spooled frames to flush")
		exportURL    = flag.String("telemetry-export", "", "ship per-interval telemetry to this gretel-tsdb base URL (empty disables)")
		exportIvl    = flag.Duration("export-interval", time.Second, "sampling interval for -telemetry-export")
		exportBuf    = flag.Int("export-buffer", 10000, "points buffered while the TSDB is unreachable (oldest shed beyond this, counted)")
		coordURL     = flag.String("coord", "", "gretel-coord base URL: resolve the analyzer via GET /assign before every dial, overriding -analyzer (empty disables)")
		partKey      = flag.String("name", "", "federation partition key reported to -coord (default \"agent\"); one key per deployment, since event pairing spans its nodes")
	)
	flag.Parse()

	// Federated mode: ask the coordinator which analyzer owns this
	// deployment. The resolver runs before every dial attempt, so a
	// reassignment after analyzer death is picked up by the next redial —
	// failover is just a redial to the replacement.
	var resolve func() (string, error)
	if *coordURL != "" {
		base := strings.TrimRight(*coordURL, "/")
		key := *partKey
		if key == "" {
			key = "agent"
		}
		client := &http.Client{Timeout: 5 * time.Second}
		resolve = func() (string, error) {
			resp, err := client.Get(base + "/assign?agent=" + url.QueryEscape(key))
			if err != nil {
				return "", err
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return "", fmt.Errorf("coord assign: %s", resp.Status)
			}
			var asg federation.Assignment
			if err := json.NewDecoder(resp.Body).Decode(&asg); err != nil {
				return "", fmt.Errorf("coord assign: decoding: %w", err)
			}
			if asg.Addr == "" {
				return "", fmt.Errorf("coord assign: no address for %q", key)
			}
			return asg.Addr, nil
		}
		log.Printf("resolving analyzer via coordinator %s (partition key %q)", base, key)
	}

	if *telAddr != "" {
		bound, _, err := telemetry.Serve(*telAddr, nil)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("telemetry on http://%s/metrics (pprof at /debug/pprof/)", bound)
	}

	if *exportURL != "" {
		exporter, err := export.Start(export.Options{
			URL: *exportURL, Interval: *exportIvl, Buffer: *exportBuf, Proc: "gretel-agent",
		})
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			exporter.Drain(5 * time.Second)
			exporter.Close()
			es := exporter.Stats()
			log.Printf("export: sampled %d delivered %d shed %d", es.Sampled, es.Delivered, es.Shed)
		}()
		log.Printf("exporting telemetry to %s every %v", *exportURL, *exportIvl)
	}

	cat := tempest.NewCatalog(*seed)
	rng := rand.New(rand.NewSource(*seed ^ 0xa9e47))
	d := openstack.NewDeployment(openstack.Config{
		Seed:            *seed,
		HeartbeatPeriod: 10 * time.Second,
		ThinkMin:        50 * time.Millisecond,
		ThinkMax:        150 * time.Millisecond,
	})
	plan := faults.NewPlan()
	d.Injector = plan

	var gt agent.GroundTruth
	if *truth {
		gt = d.GroundTruth
	}

	// Monitoring layer: one agent per node (each with its own TCP stream
	// to the analyzer, per-stream ordering preserved as in §5.2), or a
	// single merged agent. Each message is reported by the agent on its
	// destination node, so it is counted exactly once.
	sent := 0
	var parseErrors func() uint64
	var senders []*agent.Sender
	newSender := func(name string) *agent.Sender {
		// Dialing is lazy: the agent may start before the analyzer and
		// spools frames until it appears (bounded by -connect-timeout).
		snd, err := agent.DialConfig(agent.SenderConfig{
			Addr: *addr, Resolve: resolve, Agent: name,
			Ring: *spool, Heartbeat: *heartbeat, DrainTimeout: *drainTimeout,
		})
		if err != nil {
			log.Fatal(err)
		}
		senders = append(senders, snd)
		return snd
	}
	var stateSender *agent.Sender
	if *perNode {
		monitors := map[string]*agent.Monitor{}
		for _, n := range d.Fabric.Nodes() {
			snd := newSender(n.Name)
			m := agent.NewMonitor(n.Name, func(ev trace.Event) {
				snd.Send(ev)
				sent++
			}, gt)
			m.Emit = agent.OwnerPolicy(n.Name)
			monitors[n.Name] = m
		}
		d.Fabric.Tap(func(pkt cluster.Packet) {
			// Both endpoints' agents see the packet (each taps its own
			// interface); the owner policy makes exactly one report it.
			if m := monitors[pkt.SrcNode]; m != nil {
				m.HandlePacket(pkt)
			}
			if m := monitors[pkt.DstNode]; m != nil && pkt.DstNode != pkt.SrcNode {
				m.HandlePacket(pkt)
			}
		})
		parseErrors = func() uint64 {
			var total uint64
			for _, m := range monitors {
				total += m.ParseErrors
			}
			return total
		}
		stateSender = senders[0]
		log.Printf("running %d per-node agents", len(monitors))
	} else {
		snd := newSender("agent")
		mon := agent.NewMonitor("agent", func(ev trace.Event) {
			snd.Send(ev)
			sent++
		}, gt)
		d.Fabric.Tap(mon.HandlePacket)
		parseErrors = func() uint64 { return mon.ParseErrors }
		stateSender = snd
	}
	defer func() {
		for _, snd := range senders {
			snd.Close()
		}
	}()

	// Bound startup ordering: all streams must reach the analyzer within
	// the shared connect timeout, then spool through any later blips.
	connectBy := time.Now().Add(*connTimeout)
	for _, snd := range senders {
		if err := snd.WaitConnected(time.Until(connectBy)); err != nil {
			log.Fatal(err)
		}
	}

	// Every stream connected: the monitoring loop is live, /healthz on
	// the telemetry address answers 200 from here on.
	telemetry.SetReady(true)
	defer telemetry.SetReady(false)

	stageScenario(*scenarioF, d, plan)

	// Periodic distributed-state reports (collectd + watchers, §5.1).
	stopped := false
	states := 0
	if *statePeriod > 0 {
		d.Sim.Every(*statePeriod, func() bool { return stopped }, func() {
			stateSender.SendState(agent.CollectState(d.Fabric, d.Sim.Now()))
			states++
		})
	}

	// Sustain the background pool.
	stopPool := tempest.SustainPool(d, cat, *parallel, rng)

	// Stagger injected faults through the run.
	for i := 0; i < *nFaults; i++ {
		i := i
		test := cat.Tests[rng.Intn(len(cat.Tests))]
		at := *duration/4 + time.Duration(i)*(*duration/2)/time.Duration(maxInt(*nFaults, 1))
		d.Sim.After(at, func() {
			inst := d.Start(test.Op, nil)
			if idx := faultStep(test.Op); idx >= 0 {
				plan.Add(faults.Rule{
					OpID: inst.ID, StepIndex: idx, Once: true,
					Outcome: openstack.Outcome{Status: 500,
						ErrText: "Internal Server Error: injected fault"},
				})
				log.Printf("scheduled fault %d in %s", i+1, test.Op.Name)
			}
		})
	}

	log.Printf("driving %d parallel tests for %v (simulated)", *parallel, *duration)
	start := time.Now()
	d.Sim.RunUntil(d.Sim.Now().Add(*duration))
	stopped = true
	stopPool()
	d.StopNoise()
	d.Sim.Run()
	for _, snd := range senders {
		if err := snd.Drain(*drainTimeout); err != nil {
			log.Fatalf("draining events: %v", err)
		}
	}
	log.Printf("done: %d events + %d state updates streamed in %v wall time (parse errors: %d)",
		sent, states, time.Since(start).Round(time.Millisecond), parseErrors())
}

// stageScenario installs one of the §7.2 case-study faults so the remote
// analyzer's root-cause analysis has something real to find.
func stageScenario(name string, d *openstack.Deployment, plan *faults.Plan) {
	switch name {
	case "none", "":
		return
	case "linuxbridge":
		for _, n := range d.ComputeNodes() {
			faults.StopDependency(n, "neutron-plugin-linuxbridge-agent")
		}
		plan.Add(faults.Rule{
			Service: trace.SvcNovaCompute, WhenDepDown: "neutron-plugin-linuxbridge-agent",
			StepIndex: -1,
			Outcome: openstack.Outcome{Status: 1,
				ErrText: "NoValidHost: No valid host was found. There are not enough hosts available."},
		})
		log.Print("scenario: linuxbridge agent crashed on all compute hosts")
	case "diskfull":
		faults.ExhaustDisk(d.Fabric.NodeFor(trace.SvcGlance), 0.6)
		plan.FailAPI(trace.RESTAPI(trace.SvcGlance, "PUT", "/v2/images/{id}/file"),
			413, "Request Entity Too Large: insufficient store space")
		log.Print("scenario: glance disk exhausted")
	case "ntp":
		faults.StopDependency(d.Fabric.NodeFor(trace.SvcCinder), "ntp")
		plan.Add(faults.Rule{
			API:         trace.RESTAPI(trace.SvcKeystone, "GET", "/v3/auth/tokens"),
			WhenDepDown: "ntp", DepOnCaller: true, StepIndex: -1,
			Outcome: openstack.Outcome{Status: 401,
				ErrText: "The request you have made requires authentication (token expired: clock skew)"},
		})
		log.Print("scenario: NTP stopped on the cinder host")
	default:
		log.Fatalf("unknown scenario %q", name)
	}
}

// faultStep picks a mid-operation state-change REST step to fail.
func faultStep(op *openstack.Operation) int {
	var idxs []int
	for i, s := range op.Steps {
		if !s.Noise && s.API.Kind == trace.REST && s.API.StateChanging() {
			idxs = append(idxs, i)
		}
	}
	if len(idxs) == 0 {
		return -1
	}
	return idxs[len(idxs)*3/5]
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
