// Command gretel-bench runs the scenario-driven performance harness
// (internal/benchrunner) and gates regressions against the committed
// BENCH_<scenario>.json trajectory at the repo root.
//
// Usage:
//
//	gretel-bench list
//	gretel-bench run -scenario all -report json              # refresh BENCH_*.json
//	gretel-bench run -scenario ingest -profile               # + pprof hotspots
//	gretel-bench compare -fresh out/bench                    # diff vs committed baseline
//
// run executes the named scenarios (comma-separated, or "all") with a
// pinned iteration count and renders them through the selected
// reporter: "human" (table on stdout), "xunit" (XML on stdout), or
// "json" — the canonical reporter, which writes one
// BENCH_<scenario>.json per scenario into -out-dir. With -profile, CPU
// and heap profiles land in -profile-dir and the top-3 hotspot frames
// of each are recorded into the JSON.
//
// compare loads each scenario's baseline from -baseline (default ".",
// the committed repo-root trajectory) and its fresh run from -fresh,
// prints the per-metric deltas, and exits 1 if any gated metric moved
// the wrong way past its tolerance (default 10%; override per metric
// with -tol "ns_per_op=0.5,events/s=0.3"). Timing metrics need wide
// tolerances when baseline and fresh ran on different machines;
// allocation metrics barely move between identical builds and gate
// reliably at the default.
package main

import (
	"flag"
	"fmt"
	"os"

	"gretel/internal/benchrunner"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = runList()
	case "run":
		err = runRun(os.Args[2:])
	case "compare":
		err = runCompare(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "gretel-bench: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "gretel-bench: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `gretel-bench — scenario bench harness and regression gate

subcommands:
  list                     print the scenario registry
  run [flags]              run scenarios and report results
  compare [flags]          diff a fresh run against committed baselines

run flags:
  -scenario all|a,b,...    scenarios to run (default all)
  -report human|json|xunit reporter (json writes BENCH_<scenario>.json)
  -iterations N            iterations per case (default 3)
  -short                   reduced CI-sized workloads
  -profile                 capture CPU+heap pprof, record top-3 hotspots
  -profile-dir DIR         profile output dir (default bench_profiles)
  -out-dir DIR             where -report json writes files (default .)

compare flags:
  -scenario all|a,b,...    scenarios to compare (default all)
  -baseline DIR            baseline BENCH_*.json dir (default .)
  -fresh DIR               fresh BENCH_*.json dir (required)
  -tolerance F             default allowed worsening fraction (default 0.10)
  -tol m=f,...             per-metric overrides, e.g. ns_per_op=0.5
  -quiet                   print only regressions
`)
}

func runList() error {
	for _, name := range benchrunner.Names() {
		s, _ := benchrunner.Get(name)
		fmt.Printf("%-18s %s\n", name, s.Description())
	}
	return nil
}

func runRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	var (
		scenarios  = fs.String("scenario", "all", "scenarios to run (comma-separated or all)")
		report     = fs.String("report", "human", "reporter: human, json, xunit")
		iterations = fs.Int("iterations", 3, "iterations per case")
		short      = fs.Bool("short", false, "reduced CI-sized workloads")
		profileF   = fs.Bool("profile", false, "capture CPU+heap profiles and record top-3 hotspots")
		profileDir = fs.String("profile-dir", "bench_profiles", "profile output directory")
		outDir     = fs.String("out-dir", ".", "directory -report json writes BENCH_<scenario>.json into")
	)
	fs.Parse(args)

	names, err := benchrunner.Resolve(*scenarios)
	if err != nil {
		return err
	}
	reporter, err := benchrunner.NewReporter(*report)
	if err != nil {
		return err
	}
	opts := benchrunner.Options{
		Iterations: *iterations,
		Short:      *short,
		Profile:    *profileF,
		ProfileDir: *profileDir,
	}

	for _, name := range names {
		s, _ := benchrunner.Get(name)
		fmt.Fprintf(os.Stderr, "running %s (%d iterations)...\n", name, opts.Iterations)
		res, err := benchrunner.Run(s, opts)
		if err != nil {
			return err
		}
		if *report == "json" {
			path, err := benchrunner.WriteBenchFile(res, *outDir)
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
			// The human table still lands on stderr so a json run is
			// readable in the terminal without opening the file.
			benchrunner.HumanReporter{}.Report(res, os.Stderr)
			continue
		}
		if err := reporter.Report(res, os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

func runCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	var (
		scenarios = fs.String("scenario", "all", "scenarios to compare (comma-separated or all)")
		baseline  = fs.String("baseline", ".", "directory holding baseline BENCH_*.json files")
		fresh     = fs.String("fresh", "", "directory holding fresh BENCH_*.json files (required)")
		tolerance = fs.Float64("tolerance", benchrunner.DefaultTolerance, "default allowed worsening fraction")
		tolFlag   = fs.String("tol", "", "per-metric tolerance overrides (metric=fraction,...)")
		quiet     = fs.Bool("quiet", false, "print only regressions")
	)
	fs.Parse(args)
	if *fresh == "" {
		return fmt.Errorf("compare: -fresh is required (run `gretel-bench run -report json -out-dir <dir>` first)")
	}

	names, err := benchrunner.Resolve(*scenarios)
	if err != nil {
		return err
	}
	perMetric, err := benchrunner.ParseTolerances(*tolFlag)
	if err != nil {
		return err
	}
	tol := benchrunner.Tolerance{Default: *tolerance, PerMetric: perMetric}

	failed := false
	for _, name := range names {
		basePath := *baseline + "/" + benchrunner.BenchFileName(name)
		freshPath := *fresh + "/" + benchrunner.BenchFileName(name)
		base, err := benchrunner.LoadBenchFile(basePath)
		if err != nil {
			if os.IsNotExist(err) {
				fmt.Printf("%s: no committed baseline (%s) — skipping; commit one with `gretel-bench run -report json`\n",
					name, basePath)
				continue
			}
			return err
		}
		freshRes, err := benchrunner.LoadBenchFile(freshPath)
		if err != nil {
			return err
		}
		deltas, err := benchrunner.Compare(base, freshRes, tol)
		if err != nil {
			return err
		}
		regs := benchrunner.Regressions(deltas)
		fmt.Printf("=== %s: baseline %s → fresh %s ===\n",
			name, base.Timestamp, freshRes.Timestamp)
		for _, d := range deltas {
			if *quiet && !d.Regression {
				continue
			}
			fmt.Println(d)
		}
		if len(regs) > 0 {
			failed = true
			fmt.Printf("%s: %d regression(s) past tolerance\n", name, len(regs))
		} else {
			fmt.Printf("%s: within tolerance\n", name)
		}
	}
	if failed {
		return fmt.Errorf("regression gate failed")
	}
	return nil
}
