// Command gretel-coord federates a fleet of gretel analyzers into one
// cluster: it hands agents their analyzer assignment, detects analyzer
// death and reroutes, and merges the members' reports, health, and
// metrics into a single cluster view.
//
// Usage:
//
//	gretel-coord -listen :6170 \
//	    -member a,127.0.0.1:6166,http://127.0.0.1:6167 \
//	    -member b,127.0.0.1:6266,http://127.0.0.1:6267
//
// Each -member is name,eventAddr,baseURL: the member id stamped on
// envelopes, the analyzer's agent-transport listener, and its telemetry
// HTTP base. Members are plain gretel processes run with -telemetry
// (and optionally -member NAME so their reports carry the id).
//
// Endpoints:
//
//	/assign?agent=KEY   which analyzer the agent should stream to
//	                    (rendezvous-hashed over the live members; 503
//	                    when none are alive)
//	/cluster            membership, epochs, cursors, and assignments
//	/reports            merged report stream in fault-arrival order —
//	                    member report bytes verbatim as NDJSON
//	                    (?format=envelope for the ordering metadata)
//	/metrics            cluster-merged telemetry: every alive member's
//	                    counters/gauges summed with the coordinator's
//	                    own federation.* series (?format=json)
//	/healthz            200 only when every configured member is alive;
//	                    503 names the dead ones
//
// The coordinator probes each member's /healthz every -probe-interval
// and declares it dead after -down-fails consecutive failures, bumping
// the assignment epoch; agents started with -coord re-resolve on their
// next redial and their spool rings replay into the replacement. Member
// reports are pulled incrementally from each member's /reports log
// every -pull-interval and merged within a -window reorder horizon, so
// a federation of one emits byte-identical output to a bare analyzer.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"gretel/internal/federation"
	"gretel/internal/telemetry"
)

// memberList collects repeatable -member name,eventAddr,baseURL flags.
type memberList []federation.MemberConfig

func (m *memberList) String() string {
	parts := make([]string, len(*m))
	for i, mc := range *m {
		parts[i] = fmt.Sprintf("%s,%s,%s", mc.Name, mc.EventAddr, mc.BaseURL)
	}
	return strings.Join(parts, " ")
}

func (m *memberList) Set(v string) error {
	parts := strings.Split(v, ",")
	if len(parts) != 3 {
		return fmt.Errorf("want name,eventAddr,baseURL, got %q", v)
	}
	*m = append(*m, federation.MemberConfig{
		Name:      strings.TrimSpace(parts[0]),
		EventAddr: strings.TrimSpace(parts[1]),
		BaseURL:   strings.TrimSpace(parts[2]),
	})
	return nil
}

func main() {
	var members memberList
	var (
		listen    = flag.String("listen", ":6170", "address to serve the coordinator API on")
		probeIvl  = flag.Duration("probe-interval", 500*time.Millisecond, "member /healthz probe period")
		downFails = flag.Int("down-fails", 2, "consecutive probe failures before a member is declared dead")
		pullIvl   = flag.Duration("pull-interval", 250*time.Millisecond, "member /reports pull period")
		window    = flag.Duration("window", 0, "merge reorder horizon (0 = 2x pull interval)")
		mergedCap = flag.Int("merged-cap", 65536, "merged reports retained for /reports (oldest evicted beyond this)")
	)
	flag.Var(&members, "member", "analyzer member as name,eventAddr,baseURL (repeatable)")
	flag.Parse()
	if len(members) == 0 {
		fmt.Fprintln(os.Stderr, "gretel-coord: at least one -member is required")
		os.Exit(2)
	}

	coord, err := federation.NewCoordinator(federation.CoordinatorConfig{
		Members:       members,
		ProbeInterval: *probeIvl,
		DownFails:     *downFails,
		PullInterval:  *pullIvl,
		Window:        *window,
		MergedCap:     *mergedCap,
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: coord.Mux(telemetry.Default())}
	go func() {
		if err := srv.Serve(ln); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	log.Printf("coordinating %d members on http://%s (assign at /assign, merged reports at /reports)",
		len(members), ln.Addr())
	for _, m := range members {
		log.Printf("  member %s: events %s, telemetry %s", m.Name, m.EventAddr, m.BaseURL)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Print("interrupt: final pull and merge flush")
	coord.Close()
	srv.Close()

	view := coord.Cluster()
	log.Printf("done: %d reports merged (%d pending flushed), epoch %d", view.Merged, view.Pending, view.Epoch)
}
