// Command gretel runs the GRETEL analyzer service: it listens for event
// streams from monitoring agents (see cmd/gretel-agent), detects
// operational and performance faults, localizes the responsible
// administrative operation against a fingerprint library, and prints
// fault reports as they are produced.
//
// Usage:
//
//	gretel -listen :6166 -library fingerprints.json
//	gretel -listen :6166 -seed 1            # library from the built-in catalog
//	gretel -listen :6166 -telemetry :6167   # + live /metrics and /debug/pprof
//
// Generate a fingerprint library with cmd/gretel-fingerprint, or let the
// analyzer build one from the deterministic Tempest-analogue catalog
// using -seed. With -telemetry, pipeline counters and per-stage latency
// histograms are served at /metrics (flat text, ?format=json for JSON)
// and profiling endpoints at /debug/pprof/.
//
// Detection runs on a worker pool sized by -detect-workers (default
// GOMAXPROCS) so Algorithm 2 never stalls event intake; -detect-workers 0
// restores the classic inline path. The detect queue is bounded
// (-detect-backlog); when full the receiver blocks, or drops snapshots
// if -detect-shed is set (counted in core.snapshots_shed). Reports are
// delivered in fault-arrival order either way.
//
// With -explain, every report also records a full evidence trace — the
// frozen window, span tree, per-candidate match scores and rejection
// reasons, β growth steps, identifier chain, and RCA inputs — into a
// bounded in-memory store (-trace-store-cap, oldest evicted first,
// evictions counted). Traces are browsable on the telemetry address at
// /traces (index) and /traces/<id> (text; ?format=json|ndjson|chrome,
// the latter loadable in Perfetto / chrome://tracing).
//
// -replay N switches to a self-contained mode: instead of listening for
// agents, synthesize N events from the catalog workload (one injected
// fault per -fault-every messages) and drive them through the analyzer,
// then keep the telemetry endpoints up for -linger before exiting.
//
// -wal DIR makes ingest durable: every event is appended to a segmented
// write-ahead log before analysis, and on restart the retained log is
// replayed through the analyzer before /healthz goes ready (the 503
// body reports "recovering: wal replay <segment>/<total>" meanwhile).
// -wal-fsync picks the durability/latency trade (none, interval, every)
// and -wal-retain bounds the log's disk footprint. Combined with
// -replay, a killed run resumes exactly where the log ends and its
// report output is byte-identical to an uninterrupted run.
//
// -member NAME runs the analyzer as one member of a federated fleet
// (see cmd/gretel-coord): reports are stamped with the member name, and
// the telemetry address additionally serves the bounded report history
// at /reports (pulled incrementally by the coordinator) and per-agent
// stream accounting at /agents. Without -member the analyzer still
// serves /reports and /agents when -telemetry is set — a federation of
// one is byte-identical to a bare analyzer — but reports carry no
// member stamp.
//
// -telemetry-export URL ships per-interval telemetry (counter deltas,
// gauge values, histogram quantiles) to a gretel-tsdb instance as
// InfluxDB line protocol, sampled every -export-interval and buffered
// up to -export-buffer points while the TSDB is unreachable — excess
// is shed oldest-first and counted, never silently dropped. The
// summary's "export:" line prints the closed ledger
// (sampled == delivered + shed).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"gretel/internal/agent"
	"gretel/internal/core"
	"gretel/internal/federation"
	"gretel/internal/fingerprint"
	"gretel/internal/openstack"
	"gretel/internal/rca"
	"gretel/internal/replay"
	"gretel/internal/telemetry"
	"gretel/internal/telemetry/export"
	"gretel/internal/tempest"
	"gretel/internal/tracestore"
	"gretel/internal/wal"
)

func main() {
	var (
		listen     = flag.String("listen", ":6166", "address to receive agent event streams on")
		libPath    = flag.String("library", "", "fingerprint library JSON (from gretel-fingerprint)")
		seed       = flag.Int64("seed", 1, "catalog seed used when -library is not given")
		alpha      = flag.Int("alpha", 0, "sliding window size (0 = derive from FPmax/Prate/t)")
		prate      = flag.Float64("prate", 150, "expected message rate (packets/s) for window sizing")
		horizonT   = flag.Float64("t", 1, "window time horizon t in seconds")
		perf       = flag.Bool("perf", true, "enable performance-fault detection")
		quiet      = flag.Bool("quiet", false, "suppress per-report output; print only the summary")
		jsonOut    = flag.Bool("json", false, "emit reports as JSON lines instead of text")
		telAddr    = flag.String("telemetry", "", "serve /metrics and /debug/pprof on this address (e.g. :6167; empty disables)")
		workers    = flag.Int("detect-workers", runtime.GOMAXPROCS(0), "detection worker pool size (0 = detect inline on the receive path)")
		backlog    = flag.Int("detect-backlog", 0, "bounded detect queue capacity (0 = 4x workers)")
		shed       = flag.Bool("detect-shed", false, "shed snapshots when the detect queue is full instead of applying backpressure")
		shards     = flag.Int("ingest-shards", 0, "sharded ingest front-end: partition pairing/latency state across this many shards (0 = classic inline ingest)")
		ingBatch   = flag.Int("ingest-batch", 0, "batch size for sharded ingest (0 = default 256; only used with -ingest-shards > 0)")
		downAfter  = flag.Duration("down-after", 5*time.Second, "declare an agent down after this long without frames or heartbeats (0 disables liveness tracking)")
		explain    = flag.Bool("explain", false, "record a full evidence trace per report, browsable at /traces on the telemetry address")
		traceCap   = flag.Int("trace-store-cap", tracestore.DefaultCap, "max evidence traces held in memory (oldest evicted first, evictions counted)")
		replayN    = flag.Int("replay", 0, "self-test mode: synthesize this many catalog-workload events and drive them instead of listening for agents")
		faultEvery = flag.Int("fault-every", 1000, "with -replay, inject one fault per this many messages")
		replayPace = flag.Duration("replay-pace", 0, "with -replay, sleep this long per 1000 events (crash smokes use it to land a kill mid-burst)")
		linger     = flag.Duration("linger", 0, "with -replay, keep telemetry endpoints serving this long after the run")
		walDir     = flag.String("wal", "", "write-ahead log directory: capture every ingested event durably and replay the unprocessed suffix on restart (empty disables)")
		walFsync   = flag.String("wal-fsync", "interval", "WAL fsync policy: none (OS flush only), interval (bounded loss window), every (fsync per append)")
		walRetain  = flag.Int64("wal-retain", 1<<30, "WAL retention budget in bytes; closed segments beyond it are dropped oldest-first (negative retains everything)")
		exportURL  = flag.String("telemetry-export", "", "ship per-interval telemetry to this gretel-tsdb base URL (e.g. http://127.0.0.1:9870; empty disables)")
		exportIvl  = flag.Duration("export-interval", time.Second, "sampling interval for -telemetry-export")
		exportBuf  = flag.Int("export-buffer", 10000, "points buffered in memory while the TSDB is unreachable (oldest shed beyond this, counted in export.points_shed)")
		memberName = flag.String("member", "", "federation member name: stamp reports with this id when running under a gretel-coord fleet (empty = standalone)")
	)
	flag.Parse()
	if err := validateFlags(*backlog, *traceCap, *shards, *ingBatch, *walFsync, *exportIvl, *exportBuf); err != nil {
		fmt.Fprintf(os.Stderr, "gretel: %v\n", err)
		os.Exit(2)
	}

	var traces *tracestore.Store
	if *explain {
		traces = tracestore.New(*traceCap)
	}

	// Federation surface: the report history a coordinator pulls, and
	// per-agent stream accounting for ledger checks. Served whenever
	// telemetry is up — the coordinator probes/pulls these endpoints, so
	// a member is just an analyzer with -telemetry (the -member stamp is
	// optional and off by default to keep standalone output identical).
	var reportLog *federation.ReportLog
	// recvPtr publishes the receiver to the /agents handler; the
	// telemetry server starts before the receiver exists.
	var recvPtr atomic.Pointer[agent.Receiver]
	if *telAddr != "" {
		reportLog = federation.NewReportLog(0)
		var mounts []telemetry.Mount
		if traces != nil {
			h := traces.Handler()
			mounts = append(mounts,
				telemetry.Mount{Pattern: "/traces", Handler: h},
				telemetry.Mount{Pattern: "/traces/", Handler: h})
		}
		mounts = append(mounts,
			telemetry.Mount{Pattern: "/reports", Handler: reportLog.Handler()},
			telemetry.Mount{Pattern: "/agents", Handler: http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
				recv := recvPtr.Load()
				if recv == nil {
					http.Error(w, "no agent receiver (replay mode or still starting)", http.StatusServiceUnavailable)
					return
				}
				w.Header().Set("Content-Type", "application/json")
				json.NewEncoder(w).Encode(recv.AgentStats())
			})})
		bound, _, err := telemetry.Serve(*telAddr, nil, mounts...)
		if err != nil {
			log.Fatal(err)
		}
		if traces != nil {
			log.Printf("telemetry on http://%s/metrics (traces at /traces, reports at /reports, pprof at /debug/pprof/)", bound)
		} else {
			log.Printf("telemetry on http://%s/metrics (reports at /reports, pprof at /debug/pprof/)", bound)
		}
	}

	// Telemetry export: the sampler walks the process-global registry, so
	// it works with or without -telemetry. A down TSDB is not an error —
	// the shipper retries with backoff and sheds oldest-first, counted.
	var exporter *export.Exporter
	if *exportURL != "" {
		var err error
		exporter, err = export.Start(export.Options{
			URL:      *exportURL,
			Interval: *exportIvl,
			Buffer:   *exportBuf,
			Proc:     "gretel",
		})
		if err != nil {
			log.Fatalf("telemetry export: %v", err)
		}
		log.Printf("exporting telemetry to %s every %v (buffer %d points)", *exportURL, *exportIvl, *exportBuf)
	}

	var lib *fingerprint.Library
	var err error
	if *libPath != "" {
		lib, err = fingerprint.LoadFile(*libPath)
		if err != nil {
			log.Fatalf("loading library: %v", err)
		}
		log.Printf("loaded %d fingerprints from %s (FPmax=%d)", lib.Len(), *libPath, lib.MaxLen())
	} else {
		cat := tempest.NewCatalog(*seed)
		lib = fingerprint.NewLibrary()
		for _, test := range cat.Tests {
			lib.AddAPIs(test.Op.Name, test.Op.Category.String(), test.Op.APIs())
		}
		log.Printf("built %d fingerprints from catalog seed %d (FPmax=%d)", lib.Len(), *seed, lib.MaxLen())
	}

	analyzer := core.New(lib, core.Config{
		Alpha: *alpha, Prate: *prate, T: *horizonT, PerfDetection: *perf,
		DetectWorkers: *workers, DetectBacklog: *backlog, DetectShed: *shed,
		IngestShards: *shards, IngestBatch: *ingBatch, Member: *memberName,
	})
	// Root-cause analysis over the distributed state the agents stream in.
	store := rca.NewStore()
	engine := rca.NewEngine(lib, store, rca.Config{})
	if traces != nil {
		// Explain mode: evidence traces per report, and the RCA hook that
		// also surfaces the metric windows and watcher statuses it judged.
		analyzer.SetExplain(traces)
		analyzer.SetRCAExplain(engine.ExplainHook())
	} else {
		analyzer.SetRCA(engine.Hook())
	}
	// bootQuiet suppresses report emission while boot-time WAL replay
	// walks history the previous process already reported (at or below
	// the durable cursor). Report emission across a crash boundary is
	// at-least-once — the WAL itself is exactly-once.
	var bootQuiet atomic.Bool
	var sinks []func(*core.Report)
	if !*quiet {
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			sinks = append(sinks, func(rep *core.Report) {
				if err := enc.Encode(rep); err != nil {
					log.Printf("encoding report: %v", err)
				}
			})
		} else {
			sinks = append(sinks, printReport)
		}
	}
	if reportLog != nil {
		// The federation log honors bootQuiet too: reports at or below
		// the durable cursor were already pulled by the coordinator
		// before the crash, so re-recording them would re-merge them
		// under the fresh boot id.
		sinks = append(sinks, reportLog.Record)
	}
	if len(sinks) > 0 {
		analyzer.OnReport(func(rep *core.Report) {
			if bootQuiet.Load() {
				return
			}
			for _, sink := range sinks {
				sink(rep)
			}
		})
	}

	// Boot-time WAL recovery: replay the retained log through the
	// analyzer before going ready, so a crashed analyzer restarts with
	// the exact evidence state it died with. /healthz serves replay
	// progress as the 503 body until the suffix is in.
	var wlog *wal.Log
	var walSkip int
	if *walDir != "" {
		fsyncPolicy, _ := wal.ParseFsync(*walFsync) // validated above
		cursor := wal.LoadCursor(*walDir)
		if *replayN > 0 {
			// Self-test mode rebuilds and reprints the full deterministic
			// run: its output must be byte-identical to an uninterrupted
			// process, crash or no crash.
			cursor = 0
		}
		bootQuiet.Store(cursor > 0)
		telemetry.SetNotReadyReason("recovering: wal replay starting")
		walRes, err := replay.DriveWAL(analyzer, *walDir, replay.WALDrive{
			// The barrier flushes everything at or below the cursor
			// through the analyzer before lifting suppression, so a
			// report triggered by the first unprocessed record is never
			// swallowed mid-batch.
			Barrier:   cursor,
			OnBarrier: func() { bootQuiet.Store(false) },
			OnBatch: func(seg, total int, seq uint64) {
				telemetry.SetNotReadyReason(fmt.Sprintf("recovering: wal replay %d/%d", seg, total))
			},
		})
		if err != nil {
			log.Fatalf("wal recovery: %v", err)
		}
		bootQuiet.Store(false)
		if walRes.Events > 0 || walRes.Recovery.Quarantined > 0 {
			log.Printf("wal: recovered %d events from %d segments (%d quarantined, %d bytes skipped) in %v",
				walRes.Events, walRes.Recovery.Segments, walRes.Recovery.Quarantined,
				walRes.Recovery.BytesSkipped, walRes.Wall.Round(time.Millisecond))
		}
		if walRes.Recovery.FirstSeq > 1 {
			log.Printf("wal: retention dropped records 1..%d; rebuilt state starts mid-history", walRes.Recovery.FirstSeq-1)
		}
		walSkip = int(walRes.Recovery.LastSeq)
		wlog, err = wal.Open(wal.Options{Dir: *walDir, Fsync: fsyncPolicy, RetainBytes: *walRetain})
		if err != nil {
			log.Fatalf("wal: %v", err)
		}
		defer wlog.Close()
		analyzer.SetCapture(wlog)
	}

	var res replay.Result
	start := time.Now()
	// Analyzer constructed, hooks installed, WAL replayed: the loop below
	// is live. /healthz on the telemetry address flips to 200 from here on.
	telemetry.SetReady(true)
	defer telemetry.SetReady(false)
	if *replayN > 0 {
		// Self-test mode: a deterministic catalog workload with injected
		// faults, same shape as the Fig. 8c throughput experiments.
		cat := tempest.NewCatalog(*seed)
		var ops []*openstack.Operation
		for i, test := range cat.Tests {
			if i%6 == 0 {
				ops = append(ops, test.Op)
			}
		}
		events := replay.Synthesize(replay.StreamConfig{
			Ops: ops, Concurrency: 400, Events: *replayN,
			FaultEvery: *faultEvery, Seed: *seed,
		})
		if walSkip > 0 {
			log.Printf("replaying %d synthesized events (one fault per %d, alpha=%d; resuming after %d from wal)",
				len(events), *faultEvery, analyzer.Config().Alpha, walSkip)
		} else {
			log.Printf("replaying %d synthesized events (one fault per %d, alpha=%d)",
				len(events), *faultEvery, analyzer.Config().Alpha)
		}
		res = replay.DriveFrom(analyzer, events, walSkip, *replayPace)
	} else {
		recv, err := agent.ListenConfig(agent.ReceiverConfig{Addr: *listen, DownAfter: *downAfter})
		if err != nil {
			log.Fatal(err)
		}
		recvPtr.Store(recv)
		if *memberName != "" {
			log.Printf("analyzer listening on %s (alpha=%d, federation member %q)", recv.Addr(), analyzer.Config().Alpha, *memberName)
		} else {
			log.Printf("analyzer listening on %s (alpha=%d)", recv.Addr(), analyzer.Config().Alpha)
		}

		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		go func() {
			<-sig
			log.Print("interrupt: draining")
			recv.Close()
		}()

		// Drain events, state updates, and monitoring-plane health records on
		// one goroutine: gaps and dark agents degrade the analyzer gracefully
		// instead of silently corrupting fingerprint matching.
		res = replay.DriveTransport(analyzer, recv, store.Apply)
	}

	st := analyzer.Stats
	elapsed := time.Since(start)

	// Close the exporter before printing the summary: the final sample
	// and drain happen here, so the printed ledger is the closed one in
	// which delivered + shed == sampled exactly.
	var exportStats export.ExporterStats
	if exporter != nil {
		exporter.Drain(5 * time.Second)
		exporter.Close()
		exportStats = exporter.Stats()
	}

	fmt.Printf("\n--- summary ---\n")
	fmt.Printf("events:    %d (%.0f/s, %.1f Mbps)\n", st.Events,
		float64(st.Events)/elapsed.Seconds(), float64(st.Bytes)*8/1e6/elapsed.Seconds())
	fmt.Printf("pairs:     %d REST, %d RPC\n", st.RESTPairs, st.RPCPairs)
	fmt.Printf("faults:    %d operational markers, %d latency alarms\n", st.Faults, st.PerfAlarms)
	fmt.Printf("reports:   %d (%d with no matching fingerprint)\n", st.Reports, st.FalseNegs)
	if res.Gaps > 0 {
		fmt.Printf("gaps:      %d monitoring-plane gaps (%d frames lost, %d stale pairs flushed)\n",
			res.Gaps, res.Missed, st.PairsFlushed)
	}
	if recv := recvPtr.Load(); recv != nil {
		// Per-agent stream ledger: last_seq - missing - dups = events this
		// receiver actually admitted from that agent. The federation
		// smoke asserts zero silent loss from these lines.
		stats := recv.AgentStats()
		names := make([]string, 0, len(stats))
		for name := range stats {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			as := stats[name]
			fmt.Printf("agent:     %s last_seq=%d missing=%d dups=%d down=%v\n",
				name, as.LastSeq, as.Missing, as.Dups, as.Down)
		}
	}
	if st.SnapshotsShed > 0 {
		fmt.Printf("shed:      %d snapshots dropped under backpressure\n", st.SnapshotsShed)
	}
	if st.PairsEvicted > 0 {
		fmt.Printf("evicted:   %d unpaired requests aged out\n", st.PairsEvicted)
	}
	if traces != nil {
		fmt.Printf("traces:    %d evidence traces stored, %d evicted (cap %d, live %d)\n",
			res.TracesStored, res.TracesEvicted, traces.Cap(), traces.Len())
	}
	if wlog != nil {
		ws := wlog.Stats()
		fmt.Printf("wal:       %d records appended across %d segments (%d B, %d rotations, %d retired, cursor %d)\n",
			ws.Appended, ws.Segments, ws.Bytes, ws.Rotated, ws.Retired, wlog.Cursor())
	}
	if exporter != nil {
		fmt.Printf("export:    sampled %d delivered %d shed %d\n",
			exportStats.Sampled, exportStats.Delivered, exportStats.Shed)
	}
	if wm := telemetry.GetHistogram("core.window_match").Stats(); wm.Count > 0 {
		fmt.Printf("detect:    window-match p50=%.2fms p99=%.2fms max=%.2fms over %d snapshots\n",
			wm.P50Ms, wm.P99Ms, wm.MaxMs, wm.Count)
	}
	if rc := telemetry.GetHistogram("core.rca").Stats(); rc.Count > 0 {
		fmt.Printf("rca:       p50=%.2fms p99=%.2fms over %d invocations\n",
			rc.P50Ms, rc.P99Ms, rc.Count)
	}

	sums := analyzer.LatencySummaries()
	if len(sums) > 0 {
		fmt.Printf("\nslowest APIs (p95):\n")
		show := len(sums)
		if show > 8 {
			show = 8
		}
		for _, s := range sums[:show] {
			fmt.Printf("  %-55v p50=%6.1fms p95=%6.1fms p99=%6.1fms n=%d\n",
				s.API, s.Summary.Quantile(0.5)*1000, s.Summary.Quantile(0.95)*1000,
				s.Summary.Quantile(0.99)*1000, s.Summary.Count())
		}
	}

	if *replayN > 0 && *telAddr != "" && *linger > 0 {
		log.Printf("lingering %v for trace/metric queries", *linger)
		time.Sleep(*linger)
	}
}

// validateFlags rejects size flags that parse but cannot be meant.
// Negative values would silently flip internal sentinels (GOMAXPROCS
// sizing, "cap disabled") a CLI user has no reason to request — fail
// loudly with exit 2 instead.
func validateFlags(detectBacklog, traceStoreCap, ingestShards, ingestBatch int, walFsync string, exportIvl time.Duration, exportBuf int) error {
	switch {
	case detectBacklog < 0:
		return fmt.Errorf("-detect-backlog must be >= 0, got %d (0 means 4x workers)", detectBacklog)
	case traceStoreCap < 0:
		return fmt.Errorf("-trace-store-cap must be >= 0, got %d (0 means the default cap)", traceStoreCap)
	case ingestShards < 0:
		return fmt.Errorf("-ingest-shards must be >= 0, got %d (0 means classic inline ingest)", ingestShards)
	case ingestBatch < 0:
		return fmt.Errorf("-ingest-batch must be >= 0, got %d (0 means the default batch size)", ingestBatch)
	case exportIvl <= 0:
		return fmt.Errorf("-export-interval must be > 0, got %v", exportIvl)
	case exportBuf <= 0:
		return fmt.Errorf("-export-buffer must be > 0, got %d", exportBuf)
	}
	if _, err := wal.ParseFsync(walFsync); err != nil {
		return fmt.Errorf("-wal-fsync: %w", err)
	}
	return nil
}

func printReport(rep *core.Report) {
	fmt.Printf("[%s] %s fault: %v", rep.DetectedAt.Format("15:04:05.000"), rep.Kind, rep.OffendingAPI)
	if rep.Fault.ErrorText != "" {
		fmt.Printf(" (%s)", rep.Fault.ErrorText)
	}
	fmt.Println()
	fmt.Printf("  operations matched: %d of %d candidates (precision %.2f%%, beta %d)\n",
		len(rep.Candidates), rep.CandidatesByErrorOnly, rep.Precision*100, rep.Beta)
	max := len(rep.Candidates)
	if max > 5 {
		max = 5
	}
	for _, name := range rep.Candidates[:max] {
		fmt.Printf("    - %s\n", name)
	}
	if len(rep.Candidates) > max {
		fmt.Printf("    ... and %d more\n", len(rep.Candidates)-max)
	}
	for _, rc := range rep.RootCauses {
		fmt.Printf("  root cause: %s\n", rc)
	}
	if rep.TraceID != 0 {
		fmt.Printf("  evidence: trace %d (/traces/%d)\n", rep.TraceID, rep.TraceID)
	}
	if len(rep.DegradedNodes) > 0 {
		fmt.Printf("  degraded confidence: monitoring gaps on %s\n", strings.Join(rep.DegradedNodes, ", "))
	}
}
