package main

import (
	"strings"
	"testing"
	"time"
)

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name                                string
		backlog, traceCap, shards, ingBatch int
		walFsync                            string
		exportIvl                           time.Duration
		exportBuf                           int
		wantErr                             string // substring; empty = valid
	}{
		{"all-zero-defaults", 0, 0, 0, 0, "interval", time.Second, 10000, ""},
		{"all-positive", 8, 1024, 4, 256, "every", 100 * time.Millisecond, 1, ""},
		{"fsync-none", 0, 0, 0, 0, "none", time.Second, 10000, ""},
		{"negative-backlog", -1, 0, 0, 0, "interval", time.Second, 10000, "-detect-backlog"},
		{"negative-trace-cap", 0, -5, 0, 0, "interval", time.Second, 10000, "-trace-store-cap"},
		{"negative-shards", 0, 0, -2, 0, "interval", time.Second, 10000, "-ingest-shards"},
		{"negative-batch", 0, 0, 4, -1, "interval", time.Second, 10000, "-ingest-batch"},
		{"bad-fsync", 0, 0, 0, 0, "sometimes", time.Second, 10000, "-wal-fsync"},
		{"zero-export-interval", 0, 0, 0, 0, "interval", 0, 10000, "-export-interval"},
		{"negative-export-interval", 0, 0, 0, 0, "interval", -time.Second, 10000, "-export-interval"},
		{"zero-export-buffer", 0, 0, 0, 0, "interval", time.Second, 0, "-export-buffer"},
	}
	for _, c := range cases {
		err := validateFlags(c.backlog, c.traceCap, c.shards, c.ingBatch, c.walFsync, c.exportIvl, c.exportBuf)
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error: %v", c.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: expected error naming %s, got nil", c.name, c.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not name the offending flag %s", c.name, err, c.wantErr)
		}
	}
}
