package main

import (
	"strings"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name                                string
		backlog, traceCap, shards, ingBatch int
		walFsync                            string
		wantErr                             string // substring; empty = valid
	}{
		{"all-zero-defaults", 0, 0, 0, 0, "interval", ""},
		{"all-positive", 8, 1024, 4, 256, "every", ""},
		{"fsync-none", 0, 0, 0, 0, "none", ""},
		{"negative-backlog", -1, 0, 0, 0, "interval", "-detect-backlog"},
		{"negative-trace-cap", 0, -5, 0, 0, "interval", "-trace-store-cap"},
		{"negative-shards", 0, 0, -2, 0, "interval", "-ingest-shards"},
		{"negative-batch", 0, 0, 4, -1, "interval", "-ingest-batch"},
		{"bad-fsync", 0, 0, 0, 0, "sometimes", "-wal-fsync"},
	}
	for _, c := range cases {
		err := validateFlags(c.backlog, c.traceCap, c.shards, c.ingBatch, c.walFsync)
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error: %v", c.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: expected error naming %s, got nil", c.name, c.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not name the offending flag %s", c.name, err, c.wantErr)
		}
	}
}
