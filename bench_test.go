// Repository benchmarks: one per table/figure of the paper's evaluation
// plus ablations of the design choices DESIGN.md calls out. Figures that
// are sweeps are benchmarked at one representative cell; the
// cmd/gretel-experiments binary regenerates the full sweeps.
package gretel_test

import (
	"fmt"
	"testing"
	"time"

	"gretel/internal/core"
	"gretel/internal/experiments"
	"gretel/internal/fingerprint"
	"gretel/internal/hansel"
	"gretel/internal/openstack"
	"gretel/internal/replay"
	"gretel/internal/telemetry"
	"gretel/internal/tempest"
	"gretel/internal/trace"
	"gretel/internal/tracestore"
	"gretel/internal/tsoutliers"
)

// BenchmarkTable1_Characterization measures the full offline learning
// pass: 1200 isolated test executions, noise filtering and LCS learning.
func BenchmarkTable1_Characterization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table1(1, 1)
		if res.FPMax != 384 {
			b.Fatalf("FPmax = %d", res.FPMax)
		}
	}
}

// BenchmarkFig5_OverlapCDF measures the cross-category overlap CDF over
// the full 1200-fingerprint library.
func BenchmarkFig5_OverlapCDF(b *testing.B) {
	lib := experiments.BenchLibrary()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points := experiments.Fig5(lib, 70)
		if len(points) != 70 {
			b.Fatal("bad sample")
		}
	}
}

// BenchmarkFig7a_Precision measures one precision cell: 100 parallel
// tests, 4 injected faults, full detection pipeline.
func BenchmarkFig7a_Precision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells := experiments.Fig7a(1, []int{100}, []int{4})
		if cells[0].Reports != 4 {
			b.Fatalf("reports = %d", cells[0].Reports)
		}
	}
}

// BenchmarkFig8c_Throughput measures sustained analyzer throughput at the
// paper's sweet spot (1 fault per 1000 messages) and reports Mbps. The
// workload is the canonical faulty stream (internal/experiments/bench.go)
// shared with the gretel-bench fig8c-parallel scenario.
func BenchmarkFig8c_Throughput(b *testing.B) {
	lib := experiments.BenchLibrary()
	stream := experiments.FaultyBenchStream(100000)
	b.ReportAllocs()
	b.ResetTimer()
	var res replay.Result
	for i := 0; i < b.N; i++ {
		a := core.New(lib, core.Config{})
		res = replay.Drive(a, stream)
	}
	b.ReportMetric(res.Mbps, "Mbps")
	b.ReportMetric(res.EventsPerSec, "events/s")
}

// BenchmarkFig8c_Parallel runs the same faulty stream with detection on
// a worker pool of 1/2/4/8 workers (0 in BenchmarkFig8c_Throughput is
// the inline baseline), so the concurrency speedup lands in BENCH
// history alongside the Mbps series.
func BenchmarkFig8c_Parallel(b *testing.B) {
	lib := experiments.BenchLibrary()
	stream := experiments.FaultyBenchStream(100000)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var res replay.Result
			for i := 0; i < b.N; i++ {
				a := core.New(lib, core.Config{DetectWorkers: workers})
				res = replay.Drive(a, stream)
			}
			b.ReportMetric(res.Mbps, "Mbps")
			b.ReportMetric(res.EventsPerSec, "events/s")
		})
	}
}

// BenchmarkHanselBaseline drives the identical stream through the HANSEL
// per-message stitcher for the §7.4.1 comparison.
func BenchmarkHanselBaseline(b *testing.B) {
	stream := replay.Synthesize(replay.StreamConfig{
		Concurrency: 400, Events: 100000, FaultEvery: 1000, Seed: 7,
	})
	b.ResetTimer()
	var res replay.Result
	for i := 0; i < b.N; i++ {
		s := hansel.New(hansel.Config{})
		res = replay.DriveHansel(s, stream)
	}
	b.ReportMetric(res.Mbps, "Mbps")
	b.ReportMetric(res.EventsPerSec, "events/s")
}

// precisionCellWith runs the Fig7a cell with a custom analyzer config.
func precisionCellWith(b *testing.B, cfg core.Config) experiments.PrecisionCell {
	b.Helper()
	cat := tempest.NewCatalog(1)
	lib := experiments.GroundTruthLibrary(cat)
	run := &experiments.ParallelRun{
		Catalog: cat, Library: lib, Parallel: 100,
		FaultTests: []*tempest.Test{cat.ByCategory[openstack.Compute][3]},
		Analyzer:   cfg, Seed: 91,
	}
	return run.Run()
}

// BenchmarkAblationContextBuffer compares the default stop-on-drop
// context-buffer growth against growing to the full window.
func BenchmarkAblationContextBuffer(b *testing.B) {
	b.Run("stop-on-drop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cell := precisionCellWith(b, core.Config{})
			b.ReportMetric(cell.AvgMatched, "matched")
		}
	})
	b.Run("grow-to-cover", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cell := precisionCellWith(b, core.Config{GrowToCover: true})
			b.ReportMetric(cell.AvgMatched, "matched")
		}
	})
}

// BenchmarkAblationRPCPruning compares matching with RPC symbols pruned
// (the §6 optimization) against keeping them.
func BenchmarkAblationRPCPruning(b *testing.B) {
	b.Run("pruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cell := precisionCellWith(b, core.Config{})
			b.ReportMetric(cell.AvgMatched, "matched")
		}
	})
	b.Run("with-rpc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cell := precisionCellWith(b, core.Config{DisablePruneRPC: true})
			b.ReportMetric(cell.AvgMatched, "matched")
		}
	})
}

// BenchmarkAblationSnapshotTrigger compares snapshotting only on REST
// errors (default) against snapshotting on every RPC error too.
func BenchmarkAblationSnapshotTrigger(b *testing.B) {
	b.Run("rest-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			precisionCellWith(b, core.Config{})
		}
	})
	b.Run("rest-and-rpc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			precisionCellWith(b, core.Config{SnapshotOnRPCErrors: true})
		}
	})
}

// BenchmarkAblationRelaxedMatch compares the relaxed state-change matcher
// against the strict full-sequence subsequence matcher.
func BenchmarkAblationRelaxedMatch(b *testing.B) {
	cat := tempest.NewCatalog(1)
	lib := experiments.GroundTruthLibrary(cat)
	// A realistic snapshot: symbols of 100 interleaved operations.
	stream := replay.Synthesize(replay.StreamConfig{Concurrency: 100, Events: 2000, Seed: 3})
	var snapshot []rune
	for i := range stream {
		if stream[i].Type.Request() {
			if r, ok := lib.Table.Lookup(stream[i].API); ok {
				snapshot = append(snapshot, r)
			}
		}
	}
	fps := lib.All()[:200]
	b.Run("relaxed", func(b *testing.B) {
		idx := fingerprint.NewSnapshotIndex(snapshot)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, fp := range fps {
				fp.MatchRelaxedIndexed(idx)
			}
		}
	})
	b.Run("strict", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, fp := range fps {
				fp.MatchStrict(snapshot)
			}
		}
	})
}

// BenchmarkAblationPostingLists compares candidate pre-selection via the
// per-symbol posting lists against scanning all 1200 fingerprints.
func BenchmarkAblationPostingLists(b *testing.B) {
	cat := tempest.NewCatalog(1)
	lib := experiments.GroundTruthLibrary(cat)
	api := trace.RESTAPI(trace.SvcNova, "POST", "/v2.1/servers")
	sym, ok := lib.Table.Lookup(api)
	if !ok {
		b.Fatal("symbol missing")
	}
	b.Run("posting-list", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if len(lib.Candidates(sym)) == 0 {
				b.Fatal("no candidates")
			}
		}
	})
	b.Run("full-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			for _, fp := range lib.All() {
				for _, s := range fp.Symbols {
					if s == sym {
						n++
						break
					}
				}
			}
			if n == 0 {
				b.Fatal("no candidates")
			}
		}
	})
}

// BenchmarkTelemetryOverhead is the guard that keeps "lightweight"
// measurable: the per-event instrumentation (counter increments,
// histogram observes) must stay well under 100 ns/op, or the
// self-telemetry layer starts distorting the throughput it reports.
// Spans cost two time.Now calls on top and therefore run only on
// per-snapshot paths (fault detection, RCA), never per event.
func BenchmarkTelemetryOverhead(b *testing.B) {
	b.Run("counter-inc", func(b *testing.B) {
		c := telemetry.GetCounter("bench.counter")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("counter-inc-parallel", func(b *testing.B) {
		c := telemetry.GetCounter("bench.counter_par")
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Inc()
			}
		})
	})
	b.Run("histogram-observe", func(b *testing.B) {
		h := telemetry.GetHistogram("bench.hist")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(time.Duration(i) * time.Microsecond)
		}
	})
	b.Run("span", func(b *testing.B) {
		// A span is two time.Now calls plus one histogram observation —
		// the full cost of timing one pipeline stage.
		h := telemetry.GetHistogram("bench.span")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Start().End()
		}
	})
	b.Run("span-with-name-lookup", func(b *testing.B) {
		// The convenience path pays a registry map read on top.
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			telemetry.StartSpan("bench.span_lookup").End()
		}
	})
}

// BenchmarkAnalyzerIngest measures the per-event hot path with no faults,
// on the canonical clean stream shared with the ingest scenario.
func BenchmarkAnalyzerIngest(b *testing.B) {
	lib := experiments.BenchLibrary()
	stream := experiments.CleanBenchStream(50000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := core.New(lib, core.Config{})
		for j := range stream {
			a.Ingest(stream[j])
		}
	}
	b.ReportMetric(float64(len(stream)), "events/op")
}

// BenchmarkIngestSharded measures the batched, sharded ingest
// front-end against the inline baseline on a fault-free stream (the
// pairing + per-API latency work is the whole cost when nothing arms a
// snapshot). inline is Config.IngestShards = 0; the shard counts run
// the identical stream through IngestBatch via replay.Drive. The
// determinism tests pin that all variants produce identical output, so
// this benchmark is a pure throughput ablation.
func BenchmarkIngestSharded(b *testing.B) {
	lib := experiments.BenchLibrary()
	stream := experiments.CleanBenchStream(50000)
	run := func(b *testing.B, cfg core.Config) {
		b.ReportAllocs()
		var res replay.Result
		for i := 0; i < b.N; i++ {
			a := core.New(lib, cfg)
			res = replay.Drive(a, stream)
		}
		b.ReportMetric(res.EventsPerSec, "events/s")
	}
	b.Run("inline", func(b *testing.B) { run(b, core.Config{}) })
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			run(b, core.Config{IngestShards: shards})
		})
	}
}

// BenchmarkIngestExplainOff is the guard that keeps explain mode free
// when it is off: the identical stream as BenchmarkAnalyzerIngest with
// the evidence-trace subsystem compiled in but no store installed (the
// default). The disabled path is one nil check inside detect, so
// allocs/op must match the plain ingest benchmark exactly. The explain-on
// sub-benchmark shows what recording actually costs for contrast.
func BenchmarkIngestExplainOff(b *testing.B) {
	lib := experiments.BenchLibrary()
	stream := experiments.CleanBenchStream(50000)
	b.Run("off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a := core.New(lib, core.Config{})
			a.SetExplain(nil)
			for j := range stream {
				a.Ingest(stream[j])
			}
		}
		b.ReportMetric(float64(len(stream)), "events/op")
	})
	b.Run("on", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a := core.New(lib, core.Config{})
			a.SetExplain(tracestore.New(0))
			for j := range stream {
				a.Ingest(stream[j])
			}
			a.Close()
		}
		b.ReportMetric(float64(len(stream)), "events/op")
	})
}

// BenchmarkDetectorObserve measures the steady-state per-sample cost of
// the level-shift detector on the canonical detector series
// (internal/experiments/bench.go, shared with the harness's detector
// scenario). Per-event work is O(log Window) with the incremental
// order-statistic window, so the sub-benchmarks should stay near-flat
// as the window grows 16x; allocs/op must be 0 — the MAD path owns no
// per-event allocations anymore (the old re-sort allocated a deviation
// slice per sample and was ~60% of ingest CPU).
func BenchmarkDetectorObserve(b *testing.B) {
	series := experiments.DetectorBenchSeries(100000)
	t0 := time.Date(2016, 12, 12, 0, 0, 0, 0, time.UTC)
	for _, window := range []int{60, 240, 960} {
		b.Run(fmt.Sprintf("window=%d", window), func(b *testing.B) {
			d := tsoutliers.New(tsoutliers.Options{Window: window, MinSpread: 0.5, MaxAlarms: 4096})
			// Warm past seeding, window fill, and alarm-ring growth so
			// the timed region is pure steady state.
			for i, v := range series {
				d.Observe(t0.Add(time.Duration(i)*time.Millisecond), v)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v := series[i%len(series)]
				d.Observe(t0.Add(time.Duration(i)*time.Millisecond), v)
			}
		})
	}
}

// BenchmarkFingerprintLearn measures Algorithm 1 on a realistic trace set.
func BenchmarkFingerprintLearn(b *testing.B) {
	cat := tempest.NewCatalog(1)
	test := cat.ByCategory[openstack.Compute][0] // the FPmax giant
	traces := make([][]trace.API, 3)
	for r := range traces {
		traces[r] = tempest.RunIsolated(test, int64(r+1), nil)
		if traces[r] == nil {
			b.Fatal("isolated run failed")
		}
	}
	nf := fingerprint.NewNoiseFilter(openstack.NoiseAPIs())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := fingerprint.Learn(traces, nf); len(got) == 0 {
			b.Fatal("empty fingerprint")
		}
	}
}

// BenchmarkAblationCorrelationIDs measures the §5.3.1 correlation-id
// extension against the baseline detection on the same workload.
func BenchmarkAblationCorrelationIDs(b *testing.B) {
	cat := tempest.NewCatalog(1)
	lib := experiments.GroundTruthLibrary(cat)
	mk := func(corr bool) experiments.PrecisionCell {
		run := &experiments.ParallelRun{
			Catalog: cat, Library: lib, Parallel: 100,
			FaultTests:     []*tempest.Test{cat.ByCategory[openstack.Compute][3]},
			Seed:           91,
			CorrelationIDs: corr,
		}
		return run.Run()
	}
	b.Run("baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cell := mk(false)
			b.ReportMetric(cell.AvgMatched, "matched")
			b.ReportMetric(cell.HitRate, "hit")
		}
	})
	b.Run("corr-ids", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cell := mk(true)
			b.ReportMetric(cell.AvgMatched, "matched")
			b.ReportMetric(cell.HitRate, "hit")
		}
	})
}

// BenchmarkAblationNoiseFilter compares Algorithm 1's fingerprint quality
// with and without the noise filter: unfiltered learning keeps heartbeat
// and auth symbols, inflating fingerprints and polluting matching.
func BenchmarkAblationNoiseFilter(b *testing.B) {
	cat := tempest.NewCatalog(1)
	test := cat.ByCategory[openstack.Compute][1]
	traces := make([][]trace.API, 2)
	for r := range traces {
		traces[r] = tempest.RunIsolated(test, int64(r+1), nil)
		if traces[r] == nil {
			b.Fatal("isolated run failed")
		}
	}
	truth := len(test.Op.APIs())
	filtered := fingerprint.NewNoiseFilter(openstack.NoiseAPIs())
	unfiltered := &fingerprint.NoiseFilter{}
	b.Run("filtered", func(b *testing.B) {
		var got int
		for i := 0; i < b.N; i++ {
			got = len(fingerprint.Learn(traces, filtered))
		}
		b.ReportMetric(float64(got), "fp-len")
		b.ReportMetric(float64(truth), "truth-len")
	})
	b.Run("unfiltered", func(b *testing.B) {
		var got int
		for i := 0; i < b.N; i++ {
			got = len(fingerprint.Learn(traces, unfiltered))
		}
		b.ReportMetric(float64(got), "fp-len")
		b.ReportMetric(float64(truth), "truth-len")
	})
}
