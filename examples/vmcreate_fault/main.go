// The §3.1.1 scenario: a VM create is scheduled and then fails with
// "No valid host was found" because the nova-compute layer is broken on
// every compute host. Log analysis shows nothing at ERROR level, and a
// message-chain tracer stops at the failing API; GRETEL identifies the
// administrative operation (VM create) and walks upstream to the crashed
// compute-side agent.
//
//	go run ./examples/vmcreate_fault
package main

import (
	"fmt"
	"time"

	"gretel/internal/faults"
	"gretel/internal/openstack"
	"gretel/internal/scenario"
	"gretel/internal/trace"
)

func main() {
	h := scenario.New(scenario.Options{Seed: 7, WithRCA: true, PollPeriod: time.Second})

	// The linuxbridge agent is down on all compute hosts, so scheduling
	// cannot place the instance anywhere.
	for _, n := range h.D.ComputeNodes() {
		faults.StopDependency(n, "neutron-plugin-linuxbridge-agent")
	}
	h.Plan.Add(faults.Rule{
		Service:     trace.SvcNovaCompute,
		WhenDepDown: "neutron-plugin-linuxbridge-agent",
		StepIndex:   -1,
		Outcome: openstack.Outcome{Status: 1,
			ErrText: "NoValidHost: No valid host was found. There are not enough hosts available."},
	})

	// Healthy parallel traffic, then the doomed VM create.
	for _, op := range openstack.CoreOperations()[3:7] {
		h.D.Start(op, nil)
	}
	h.D.Start(openstack.OpVMCreate(), nil)
	h.Run(time.Hour)
	h.Finish()

	fmt.Println("What the operator sees on the dashboard:")
	fmt.Println(`  "No valid host was found. There are not enough hosts available."`)
	fmt.Println()
	fmt.Println("What GRETEL reports:")
	for _, rep := range h.Reports() {
		fmt.Printf("  fault:        %v (upstream origin: %v)\n", rep.Fault.API, rep.OffendingAPI)
		fmt.Printf("  operation:    %v\n", rep.Candidates)
		fmt.Printf("  errors seen:  %d (RPC failure + relayed REST error analyzed together)\n", len(rep.Errors))
		for _, rc := range rep.RootCauses {
			fmt.Printf("  root cause:   %s\n", rc)
		}
	}
}
