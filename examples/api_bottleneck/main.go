// The §3.1.2 scenario: creating many VM instances in parallel slows down
// because the Neutron server's CPU saturates. Every operation still
// succeeds, so there is no error to log and operational tracers never
// fire — but GRETEL's latency level-shift detector flags the performance
// fault, ties it to the VM-create operation, and the root-cause engine
// finds the CPU surge on the Neutron node.
//
//	go run ./examples/api_bottleneck
package main

import (
	"fmt"
	"time"

	"gretel/internal/core"
	"gretel/internal/faults"
	"gretel/internal/openstack"
	"gretel/internal/scenario"
	"gretel/internal/trace"
	"gretel/internal/tsoutliers"
)

func main() {
	h := scenario.New(scenario.Options{
		Seed:       11,
		WithRCA:    true,
		PollPeriod: time.Second,
		Analyzer: core.Config{
			PerfDetection: true,
			Latency:       tsoutliers.Options{Warmup: 10, MinRun: 3, MinSpread: 0.01},
		},
	})

	// A steady stream of VM creates builds the per-API latency baselines.
	stop := false
	h.D.Sim.Every(20*time.Second, func() bool { return stop }, func() {
		h.D.Start(openstack.OpVMCreate(), nil)
	})
	h.Run(10 * time.Minute)

	// Neutron's CPU saturates (e.g. an agent sync storm).
	fmt.Println("injecting CPU surge on the Neutron server...")
	restore := faults.InjectCPUSurge(h.D.Fabric.NodeFor(trace.SvcNeutron), 90)
	h.Run(15 * time.Minute)
	restore()
	stop = true
	h.Finish()

	fmt.Printf("latency alarms raised: %d\n", h.Analyzer.Stats.PerfAlarms)
	for _, rep := range h.Reports() {
		if rep.Kind != core.Performance {
			continue
		}
		fmt.Printf("performance fault: %v latency %v\n", rep.Fault.API, rep.Latency.Round(time.Millisecond))
		fmt.Printf("  operation(s): %v\n", rep.Candidates)
		for _, rc := range rep.RootCauses {
			fmt.Printf("  root cause:   %s\n", rc)
		}
		break // the first report tells the story
	}

	// The detector's view of one affected API (the paper's Fig 6 series).
	api := trace.RESTAPI(trace.SvcNeutron, "GET", "/v2.0/ports.json")
	if det := h.Analyzer.LatencyDetector(api); det != nil {
		for _, sh := range det.Shifts() {
			fmt.Printf("level shift on %v: %.0fms -> %.0fms\n", api, sh.From*1000, sh.To*1000)
		}
	}
}
