// Quickstart: assemble the full GRETEL stack in-process, inject one
// operational fault into a simulated OpenStack deployment, and print the
// resulting fault report with its root cause.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"gretel/internal/faults"
	"gretel/internal/openstack"
	"gretel/internal/scenario"
	"gretel/internal/trace"
)

func main() {
	// The harness wires: simulated deployment -> wire taps -> monitoring
	// agent -> analyzer -> root-cause engine, with a fingerprint library
	// learned from the core operations.
	h := scenario.New(scenario.Options{
		Seed:       42,
		WithRCA:    true,
		PollPeriod: time.Second, // collectd-analogue resource polling
	})

	// Fill the Glance node's disk and make image-file uploads fail with
	// the §7.2.1 "Request Entity Too Large" error.
	glance := h.D.Fabric.NodeFor(trace.SvcGlance)
	faults.ExhaustDisk(glance, 0.5)
	h.Plan.FailAPI(
		trace.RESTAPI(trace.SvcGlance, "PUT", "/v2/images/{id}/file"),
		413, "Request Entity Too Large: insufficient store space")

	// Background traffic plus the operation that will hit the fault.
	for _, op := range openstack.CoreOperations()[:4] {
		h.D.Start(op, nil)
	}
	h.D.Start(openstack.OpImageUpload(), nil)

	// Advance the simulation and drain.
	h.Run(30 * time.Minute)
	h.Finish()

	for _, rep := range h.Reports() {
		fmt.Printf("%s fault detected: %v\n", rep.Kind, rep.OffendingAPI)
		fmt.Printf("  error:      %s (HTTP %d)\n", rep.Fault.ErrorText, rep.Fault.Status)
		fmt.Printf("  operation:  %v (narrowed from %d candidates, precision %.2f%%)\n",
			rep.Candidates, rep.CandidatesByErrorOnly, rep.Precision*100)
		for _, rc := range rep.RootCauses {
			fmt.Printf("  root cause: %s\n", rc)
		}
	}
	if len(h.Reports()) == 0 {
		fmt.Println("no faults detected (unexpected)")
	}
}
