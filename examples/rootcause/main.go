// The four §7.2 case studies, end to end: failed image uploads (disk
// exhaustion), Neutron API latency (CPU surge), a crashed linuxbridge
// agent, and a stopped NTP daemon. Each scenario drives the full stack
// and prints GRETEL's diagnosis.
//
//	go run ./examples/rootcause
package main

import (
	"fmt"
	"time"

	"gretel/internal/core"
	"gretel/internal/faults"
	"gretel/internal/openstack"
	"gretel/internal/scenario"
	"gretel/internal/trace"
	"gretel/internal/tsoutliers"
)

func report(title string, reps []*core.Report) {
	fmt.Printf("--- %s ---\n", title)
	if len(reps) == 0 {
		fmt.Println("  (no reports)")
		return
	}
	for _, rep := range reps {
		fmt.Printf("  %s fault on %v", rep.Kind, rep.OffendingAPI)
		if rep.Fault.ErrorText != "" {
			fmt.Printf(" — %q", rep.Fault.ErrorText)
		}
		fmt.Println()
		if len(rep.Candidates) > 0 {
			fmt.Printf("  operation: %v\n", rep.Candidates)
		}
		for _, rc := range rep.RootCauses {
			fmt.Printf("  root cause: %s\n", rc)
		}
	}
	fmt.Println()
}

func main() {
	// §7.2.1 Failed image uploads.
	{
		h := scenario.New(scenario.Options{Seed: 101, WithRCA: true, PollPeriod: time.Second})
		faults.ExhaustDisk(h.D.Fabric.NodeFor(trace.SvcGlance), 0.8)
		h.Plan.FailAPI(trace.RESTAPI(trace.SvcGlance, "PUT", "/v2/images/{id}/file"),
			413, "Request Entity Too Large: insufficient store space")
		h.D.Start(openstack.OpImageUpload(), nil)
		h.Run(30 * time.Minute)
		h.Finish()
		report("7.2.1 failed image upload", h.Reports())
	}

	// §7.2.2 Neutron API latency increase.
	{
		h := scenario.New(scenario.Options{
			Seed: 103, WithRCA: true, PollPeriod: time.Second,
			Analyzer: core.Config{
				PerfDetection: true,
				Latency:       tsoutliers.Options{Warmup: 10, MinRun: 3, MinSpread: 0.01},
			},
		})
		stop := false
		h.D.Sim.Every(20*time.Second, func() bool { return stop }, func() {
			h.D.Start(openstack.OpVMCreate(), nil)
		})
		h.Run(10 * time.Minute)
		restore := faults.InjectCPUSurge(h.D.Fabric.NodeFor(trace.SvcNeutron), 90)
		h.Run(15 * time.Minute)
		restore()
		stop = true
		h.Finish()
		var perf []*core.Report
		for _, rep := range h.Reports() {
			if rep.Kind == core.Performance && rep.Fault.API.Service == trace.SvcNeutron {
				perf = append(perf, rep)
				break
			}
		}
		report("7.2.2 Neutron API latency increase", perf)
	}

	// §7.2.3 Linux bridge agent failure.
	{
		h := scenario.New(scenario.Options{Seed: 107, WithRCA: true, PollPeriod: time.Second})
		for _, n := range h.D.ComputeNodes() {
			faults.StopDependency(n, "neutron-plugin-linuxbridge-agent")
		}
		h.Plan.Add(faults.Rule{
			Service: trace.SvcNovaCompute, WhenDepDown: "neutron-plugin-linuxbridge-agent",
			StepIndex: -1,
			Outcome: openstack.Outcome{Status: 1,
				ErrText: "NoValidHost: No valid host was found. There are not enough hosts available."},
		})
		h.D.Start(openstack.OpVMCreate(), nil)
		h.Run(time.Hour)
		h.Finish()
		report("7.2.3 linuxbridge agent failure", h.Reports())
	}

	// §7.2.4 NTP failure.
	{
		h := scenario.New(scenario.Options{Seed: 109, WithRCA: true, PollPeriod: time.Second})
		faults.StopDependency(h.D.Fabric.NodeFor(trace.SvcCinder), "ntp")
		h.Plan.Add(faults.Rule{
			API:         trace.RESTAPI(trace.SvcKeystone, "GET", "/v3/auth/tokens"),
			WhenDepDown: "ntp", DepOnCaller: true, StepIndex: -1,
			Outcome: openstack.Outcome{Status: 401,
				ErrText: "The request you have made requires authentication (token expired: clock skew)"},
		})
		h.D.Start(openstack.OpCinderList(), nil)
		h.Run(time.Hour)
		h.Finish()
		report("7.2.4 NTP failure", h.Reports())
	}
}
