// The §5.3.1 correlation-identifier extension, side by side with the
// baseline: the same workload and fault are analyzed twice, once with
// classic fingerprint matching over the shared message window and once
// with X-Openstack-Request-Id filtering, showing how correlation ids
// shrink the candidate set and pin the exact operation.
//
//	go run ./examples/correlation
package main

import (
	"fmt"

	"gretel/internal/experiments"
	"gretel/internal/openstack"
	"gretel/internal/tempest"
)

func main() {
	cat := tempest.NewCatalog(21)
	lib := experiments.GroundTruthLibrary(cat)

	runOnce := func(corr bool) experiments.PrecisionCell {
		run := &experiments.ParallelRun{
			Catalog:        cat,
			Library:        lib,
			Parallel:       100,
			FaultTests:     cat.ByCategory[openstack.Compute][:4],
			Seed:           77,
			CorrelationIDs: corr,
		}
		return run.Run()
	}

	fmt.Println("baseline (OpenStack LIBERTY: no correlation ids):")
	base := runOnce(false)
	fmt.Printf("  matched operations per fault: %.1f (of %.0f containing the error API)\n",
		base.AvgMatched, base.AvgByErrorOnly)
	fmt.Printf("  precision θ: %.2f%%   true operation included: %.0f%%\n",
		base.AvgTheta*100, base.HitRate*100)

	fmt.Println("\nwith correlation ids (X-Openstack-Request-Id on every message):")
	corr := runOnce(true)
	fmt.Printf("  matched operations per fault: %.1f\n", corr.AvgMatched)
	fmt.Printf("  precision θ: %.2f%%   true operation included: %.0f%%\n",
		corr.AvgTheta*100, corr.HitRate*100)

	fmt.Println("\nAs §5.3.1 anticipates, correlation identifiers \"increase")
	fmt.Println("precision by reducing the number of packets against which a")
	fmt.Println("fingerprint is matched\" — and they also guarantee the true")
	fmt.Println("operation stays in the matched set.")
}
