// The §3.1.3 scenario: many similar operations run in parallel and one
// of them fails. Log analysis is slow; per-message stitching reports a
// chain for every operation; GRETEL's fingerprints — invoked only on the
// fault — pinpoint the offending operation among the crowd.
//
//	go run ./examples/parallel_ops
package main

import (
	"fmt"
	"math/rand"
	"time"

	"gretel/internal/agent"
	"gretel/internal/core"
	"gretel/internal/experiments"
	"gretel/internal/faults"
	"gretel/internal/openstack"
	"gretel/internal/tempest"
	"gretel/internal/trace"
)

func main() {
	const parallel = 100
	seed := int64(3)
	cat := tempest.NewCatalog(seed)
	lib := experiments.GroundTruthLibrary(cat)

	d := openstack.NewDeployment(openstack.Config{
		Seed:            seed,
		HeartbeatPeriod: 10 * time.Second,
		ThinkMin:        50 * time.Millisecond,
		ThinkMax:        150 * time.Millisecond,
	})
	plan := faults.NewPlan()
	d.Injector = plan
	analyzer := core.New(lib, core.Config{Prate: parallel * 16, T: 10})
	mon := agent.NewMonitor("analyzer", analyzer.Ingest, d.GroundTruth)
	d.Fabric.Tap(mon.HandlePacket)

	// Sustain 100 concurrent tests.
	rng := rand.New(rand.NewSource(seed))
	stopped := false
	var restart func(*openstack.Instance)
	restart = func(*openstack.Instance) {
		if stopped {
			return
		}
		d.Start(cat.Tests[rng.Intn(len(cat.Tests))].Op, restart)
	}
	for i := 0; i < parallel; i++ {
		d.Start(cat.Tests[rng.Intn(len(cat.Tests))].Op, restart)
	}

	// After a warmup, one instance of a VM-create-family test fails at a
	// mid-operation POST.
	victim := cat.ByCategory[openstack.Compute][3]
	d.Sim.After(90*time.Second, func() {
		inst := d.Start(victim.Op, nil)
		var api trace.API
		for _, s := range victim.Op.Steps {
			if !s.Noise && s.API.Kind == trace.REST && s.API.StateChanging() {
				api = s.API // first state-change REST step
				break
			}
		}
		plan.Add(faults.Rule{OpID: inst.ID, API: api, StepIndex: -1, Once: true,
			Outcome: openstack.Outcome{Status: 503, ErrText: "Service Unavailable (injected)"}})
		fmt.Printf("injected fault into one instance of %s\n", victim.Op.Name)
	})

	d.Sim.RunUntil(d.Sim.Now().Add(4 * time.Minute))
	stopped = true
	d.Sim.RunUntil(d.Sim.Now().Add(time.Minute))
	d.StopNoise()
	d.Sim.Run()
	analyzer.Flush()

	fmt.Printf("events processed: %d; snapshots taken: %d (detection runs only on faults)\n",
		analyzer.Stats.Events, analyzer.Stats.Snapshots)
	for _, rep := range analyzer.Reports() {
		fmt.Printf("fault: %v -> %d candidate operations, matched %d (precision %.2f%%)\n",
			rep.OffendingAPI, rep.CandidatesByErrorOnly, len(rep.Candidates), rep.Precision*100)
		show := len(rep.Candidates)
		if show > 6 {
			show = 6
		}
		for _, name := range rep.Candidates[:show] {
			marker := " "
			if name == rep.TruthOp {
				marker = "*"
			}
			fmt.Printf("  %s %s\n", marker, name)
		}
		fmt.Printf("report delay: %v after the fault message\n", rep.ReportDelay.Round(time.Millisecond))
	}
}
